//! # aurora-log — "the log is the database"
//!
//! Core data model of the Aurora reproduction: log sequence numbers, redo
//! log records, the log applicator, and the per-segment log with gap
//! tracking.
//!
//! The paper's §3 thesis is that the *only* thing a database needs to write
//! across the network is the redo log: a log record is "the difference
//! between the after-image and the before-image of the page that was
//! modified", and "any pages that the storage system materializes are
//! simply a cache of log applications". This crate owns that model:
//!
//! * [`Lsn`] — monotonically increasing log sequence numbers, and the
//!   allocator with the paper's LSN Allocation Limit (LAL) back-pressure,
//! * [`LogRecord`] — redo records carrying byte-range page patches with
//!   both before- and after-images (before-images power undo/rollback),
//!   per-PG backlinks, and the CPL (Consistency Point LSN) tag that
//!   delimits mini-transactions,
//! * [`apply_record`]/[`unapply_record`] — the log applicator, used
//!   identically by the database engine (replica cache apply) and by the
//!   storage nodes (page materialization), exactly as §4.3 prescribes,
//! * [`SegmentLog`] — a storage segment's slice of the log with its SCL
//!   (Segment Complete LSN) and the hole detection that drives gossip,
//! * [`codec`] — a CRC-protected binary encoding used to size network
//!   messages and to scrub stored records (Fig. 4, step 8).

pub mod applicator;
pub mod codec;
pub mod lsn;
pub mod mtr;
pub mod page;
pub mod record;
pub mod segment_log;

pub use applicator::{apply_record, unapply_record, ApplyError};
pub use lsn::{Lsn, LsnAllocator, PgId, SegmentId, TxnId, LAL_DEFAULT};
pub use mtr::MtrBuilder;
pub use page::{Page, PageId, PAGE_SIZE};
pub use record::{LogRecord, Patch, RecordBody};
pub use segment_log::SegmentLog;
