//! The log applicator.
//!
//! §4.3: "A great simplifying principle of a traditional database is that
//! the same redo log applicator is used in the forward processing path as
//! well as on recovery … We rely on the same principle in Aurora as well,
//! except that the redo log applicator is decoupled from the database and
//! operates on storage nodes, in parallel, and all the time in the
//! background."
//!
//! This module is that single shared applicator: the engine uses it to
//! mutate buffer-cache pages, replicas use it to apply the streamed log to
//! cached pages, and storage nodes use it to materialize pages from redo.
//! [`unapply_record`] is the inverse used by transaction rollback.

use std::fmt;

use crate::lsn::Lsn;
use crate::page::Page;
use crate::record::{LogRecord, RecordBody};

/// Errors from applying a record to a page image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApplyError {
    /// The page image is newer than (or equal to) the record — applying
    /// would double-apply. Callers usually treat this as "skip".
    AlreadyApplied { page_lsn: Lsn, record_lsn: Lsn },
    /// Applying out of order: the record expects an older image than the
    /// page has (a gap in the chain was skipped).
    StaleImage { page_lsn: Lsn, expected_before: Lsn },
    /// A patch falls outside the page.
    OutOfBounds { offset: u32, len: usize },
    /// A before-image mismatch detected during unapply (corruption guard).
    BeforeImageMismatch { offset: u32 },
    /// Record does not carry a page payload (txn control records).
    NotAPageRecord,
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplyError::AlreadyApplied {
                page_lsn,
                record_lsn,
            } => write!(
                f,
                "record {record_lsn} already applied (page at {page_lsn})"
            ),
            ApplyError::StaleImage {
                page_lsn,
                expected_before,
            } => write!(
                f,
                "page at {page_lsn} but record expects an image before {expected_before}"
            ),
            ApplyError::OutOfBounds { offset, len } => {
                write!(f, "patch [{offset}..+{len}] outside page")
            }
            ApplyError::BeforeImageMismatch { offset } => {
                write!(f, "before-image mismatch at offset {offset}")
            }
            ApplyError::NotAPageRecord => write!(f, "record has no page payload"),
        }
    }
}

impl std::error::Error for ApplyError {}

/// Apply one redo record to a page image, producing its after-image and
/// advancing the page LSN. Idempotence: records at or below the page LSN
/// are rejected with [`ApplyError::AlreadyApplied`] so callers can skip.
pub fn apply_record(page: &mut Page, record: &LogRecord) -> Result<(), ApplyError> {
    if record.lsn <= page.lsn {
        return Err(ApplyError::AlreadyApplied {
            page_lsn: page.lsn,
            record_lsn: record.lsn,
        });
    }
    match &record.body {
        RecordBody::PageWrite { patches, .. } => {
            for p in patches {
                let off = p.offset as usize;
                let len = p.after.len();
                if off + len > page.bytes().len() {
                    return Err(ApplyError::OutOfBounds {
                        offset: p.offset,
                        len,
                    });
                }
            }
            for p in patches {
                page.write_range(p.offset as usize, &p.after);
            }
            page.lsn = record.lsn;
            Ok(())
        }
        RecordBody::PageFormat { init, .. } => {
            if init.len() > page.bytes().len() {
                return Err(ApplyError::OutOfBounds {
                    offset: 0,
                    len: init.len(),
                });
            }
            page.bytes_mut().fill(0);
            page.write_range(0, init);
            page.lsn = record.lsn;
            Ok(())
        }
        _ => Err(ApplyError::NotAPageRecord),
    }
}

/// Undo one record: restore the before-images. Used by transaction
/// rollback (normal-operation aborts and post-crash undo recovery, §4.3).
///
/// The page LSN is *not* rewound — undo generates new history in the real
/// system (compensating records); the caller logs the compensating
/// `PageWrite` built from the returned patches. As a corruption guard this
/// verifies the current content matches the record's after-image.
pub fn unapply_record(page: &mut Page, record: &LogRecord) -> Result<(), ApplyError> {
    match &record.body {
        RecordBody::PageWrite { patches, .. } => {
            // Verify in reverse order, then restore.
            for p in patches.iter().rev() {
                let off = p.offset as usize;
                let len = p.after.len();
                if off + len > page.bytes().len() {
                    return Err(ApplyError::OutOfBounds {
                        offset: p.offset,
                        len,
                    });
                }
                if &page.bytes()[off..off + len] != p.after.as_ref() {
                    return Err(ApplyError::BeforeImageMismatch { offset: p.offset });
                }
                page.write_range(off, &p.before);
            }
            Ok(())
        }
        _ => Err(ApplyError::NotAPageRecord),
    }
}

/// Apply every applicable record from an ordered slice, skipping ones the
/// page already reflects; stops at the first genuine error. Returns how
/// many records were applied. This is the storage node "coalesce" kernel
/// (Fig. 4 step 5) and the recovery replay kernel.
pub fn apply_chain<'a, I>(page: &mut Page, records: I) -> Result<usize, ApplyError>
where
    I: IntoIterator<Item = &'a LogRecord>,
{
    let mut applied = 0;
    for r in records {
        match apply_record(page, r) {
            Ok(()) => applied += 1,
            Err(ApplyError::AlreadyApplied { .. }) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsn::{PgId, TxnId};
    use crate::page::PageId;
    use crate::record::Patch;
    use bytes::Bytes;

    fn write_rec(lsn: u64, offset: u32, before: &[u8], after: &[u8]) -> LogRecord {
        LogRecord {
            lsn: Lsn(lsn),
            prev_in_pg: Lsn(lsn - 1),
            pg: PgId(0),
            txn: TxnId(1),
            is_cpl: true,
            body: RecordBody::PageWrite {
                page: PageId(0),
                patches: vec![Patch {
                    offset,
                    before: Bytes::copy_from_slice(before),
                    after: Bytes::copy_from_slice(after),
                }],
            },
        }
    }

    #[test]
    fn apply_then_unapply_restores() {
        let mut page = Page::new();
        page.write_range(10, b"aaaa");
        let snapshot = page.clone();
        let r = write_rec(1, 10, b"aaaa", b"bbbb");
        apply_record(&mut page, &r).unwrap();
        assert_eq!(&page.bytes()[10..14], b"bbbb");
        assert_eq!(page.lsn, Lsn(1));
        unapply_record(&mut page, &r).unwrap();
        assert_eq!(&page.bytes()[10..14], b"aaaa");
        assert_eq!(page.bytes(), snapshot.bytes());
    }

    #[test]
    fn apply_is_idempotent_via_lsn_check() {
        let mut page = Page::new();
        let r = write_rec(5, 0, &[0], &[9]);
        apply_record(&mut page, &r).unwrap();
        let err = apply_record(&mut page, &r).unwrap_err();
        assert!(matches!(err, ApplyError::AlreadyApplied { .. }));
        assert_eq!(page.bytes()[0], 9);
    }

    #[test]
    fn out_of_bounds_rejected_without_partial_apply() {
        let mut page = Page::new();
        let r = LogRecord {
            lsn: Lsn(1),
            prev_in_pg: Lsn::ZERO,
            pg: PgId(0),
            txn: TxnId(1),
            is_cpl: true,
            body: RecordBody::PageWrite {
                page: PageId(0),
                patches: vec![
                    Patch {
                        offset: 0,
                        before: Bytes::from_static(&[0]),
                        after: Bytes::from_static(&[1]),
                    },
                    Patch {
                        offset: u32::MAX,
                        before: Bytes::from_static(&[0]),
                        after: Bytes::from_static(&[1]),
                    },
                ],
            },
        };
        let err = apply_record(&mut page, &r).unwrap_err();
        assert!(matches!(err, ApplyError::OutOfBounds { .. }));
        // first patch must NOT have been applied (validation precedes writes)
        assert_eq!(page.bytes()[0], 0);
        assert_eq!(page.lsn, Lsn::ZERO);
    }

    #[test]
    fn format_resets_page() {
        let mut page = Page::new();
        page.write_range(100, b"junk");
        let r = LogRecord {
            lsn: Lsn(2),
            prev_in_pg: Lsn::ZERO,
            pg: PgId(0),
            txn: TxnId::SYSTEM,
            is_cpl: true,
            body: RecordBody::PageFormat {
                page: PageId(0),
                init: Bytes::from_static(b"HDR"),
            },
        };
        apply_record(&mut page, &r).unwrap();
        assert_eq!(&page.bytes()[0..3], b"HDR");
        assert!(page.bytes()[3..].iter().all(|&b| b == 0));
    }

    #[test]
    fn txn_control_records_do_not_apply() {
        let mut page = Page::new();
        let r = LogRecord {
            lsn: Lsn(1),
            prev_in_pg: Lsn::ZERO,
            pg: PgId(0),
            txn: TxnId(1),
            is_cpl: true,
            body: RecordBody::TxnCommit,
        };
        assert_eq!(apply_record(&mut page, &r), Err(ApplyError::NotAPageRecord));
    }

    #[test]
    fn unapply_detects_corruption() {
        let mut page = Page::new();
        let r = write_rec(1, 0, &[0, 0], &[7, 7]);
        apply_record(&mut page, &r).unwrap();
        page.write_range(0, &[9, 9]); // corrupt
        let err = unapply_record(&mut page, &r).unwrap_err();
        assert!(matches!(err, ApplyError::BeforeImageMismatch { .. }));
    }

    #[test]
    fn chain_applies_in_order_and_skips_old() {
        let mut page = Page::new();
        let r1 = write_rec(1, 0, &[0], &[1]);
        let r2 = write_rec(2, 0, &[1], &[2]);
        let r3 = write_rec(3, 0, &[2], &[3]);
        apply_record(&mut page, &r1).unwrap();
        // chain including the already-applied r1
        let n = apply_chain(&mut page, [&r1, &r2, &r3]).unwrap();
        assert_eq!(n, 2);
        assert_eq!(page.bytes()[0], 3);
        assert_eq!(page.lsn, Lsn(3));
    }

    #[test]
    fn multi_patch_record_applies_all() {
        let mut page = Page::new();
        let r = LogRecord {
            lsn: Lsn(1),
            prev_in_pg: Lsn::ZERO,
            pg: PgId(0),
            txn: TxnId(1),
            is_cpl: true,
            body: RecordBody::PageWrite {
                page: PageId(0),
                patches: vec![
                    Patch {
                        offset: 0,
                        before: Bytes::from_static(&[0]),
                        after: Bytes::from_static(&[1]),
                    },
                    Patch {
                        offset: 4000,
                        before: Bytes::from_static(&[0, 0]),
                        after: Bytes::from_static(&[2, 3]),
                    },
                ],
            },
        };
        apply_record(&mut page, &r).unwrap();
        assert_eq!(page.bytes()[0], 1);
        assert_eq!(&page.bytes()[4000..4002], &[2, 3]);
        unapply_record(&mut page, &r).unwrap();
        assert_eq!(page.bytes()[0], 0);
        assert_eq!(&page.bytes()[4000..4002], &[0, 0]);
    }
}
