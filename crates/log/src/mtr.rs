//! Mini-transactions (MTRs).
//!
//! §4.1 gives the contract: "Each database-level transaction is broken up
//! into multiple mini-transactions (MTRs) that are ordered and must be
//! performed atomically. Each mini-transaction is composed of multiple
//! contiguous log records. The final log record in a mini-transaction is a
//! CPL." A B+-tree page split that touches a leaf, its sibling and their
//! parent is the canonical MTR.
//!
//! [`MtrBuilder`] accumulates record bodies, then [`MtrBuilder::finish`]
//! allocates a contiguous LSN range (honouring LAL back-pressure), threads
//! the per-PG backlinks, and tags the CPL.

use aurora_sim::hash::FxHashMap;

use crate::lsn::{LalExceeded, Lsn, LsnAllocator, PgId, TxnId};
use crate::page::PageId;
use crate::record::{LogRecord, RecordBody};

/// How CPLs are assigned — §4.1 notes a client "can simply mark every log
/// record as a CPL"; the cost is explored in the CPL-granularity ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CplMode {
    /// Only the final record of the MTR is a CPL (the real design).
    #[default]
    LastOnly,
    /// Every record is a CPL.
    Every,
}

/// Accumulates the records of one mini-transaction.
#[derive(Debug, Default)]
pub struct MtrBuilder {
    entries: Vec<(TxnId, RecordBody)>,
}

impl MtrBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a record body owned by `txn`.
    pub fn push(&mut self, txn: TxnId, body: RecordBody) -> &mut Self {
        self.entries.push((txn, body));
        self
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Seal the MTR: allocate LSNs, route each record to its PG via
    /// `pg_of_page` (txn-control records go to PG 0, which always exists),
    /// thread backlinks through `chain_tails` (the per-PG last-LSN map the
    /// log manager owns), and tag CPLs.
    ///
    /// On LAL back-pressure nothing is consumed — the caller may retry the
    /// same builder after VDL advances.
    pub fn finish(
        self,
        alloc: &mut LsnAllocator,
        mut pg_of_page: impl FnMut(PageId) -> PgId,
        chain_tails: &mut FxHashMap<PgId, Lsn>,
        cpl_mode: CplMode,
    ) -> Result<Vec<LogRecord>, (MtrBuilder, LalExceeded)> {
        if self.entries.is_empty() {
            return Ok(Vec::new());
        }
        let n = self.entries.len() as u64;
        let first = match alloc.alloc(n) {
            Ok(l) => l,
            Err(e) => return Err((self, e)),
        };
        let count = self.entries.len();
        let mut out = Vec::with_capacity(count);
        for (i, (txn, body)) in self.entries.into_iter().enumerate() {
            let lsn = first.plus(i as u64);
            let pg = match body.page() {
                Some(p) => pg_of_page(p),
                None => PgId(0),
            };
            let tail = chain_tails.entry(pg).or_insert(Lsn::ZERO);
            let prev_in_pg = *tail;
            *tail = lsn;
            let is_cpl = match cpl_mode {
                CplMode::LastOnly => i + 1 == count,
                CplMode::Every => true,
            };
            out.push(LogRecord {
                lsn,
                prev_in_pg,
                pg,
                txn,
                is_cpl,
                body,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsn::LAL_DEFAULT;
    use bytes::Bytes;

    fn body(page: u64) -> RecordBody {
        RecordBody::PageFormat {
            page: PageId(page),
            init: Bytes::from_static(b"x"),
        }
    }

    #[test]
    fn empty_mtr_produces_nothing() {
        let mut alloc = LsnAllocator::new(Lsn::ZERO, LAL_DEFAULT);
        let mut tails = FxHashMap::default();
        let recs = MtrBuilder::new()
            .finish(&mut alloc, |_| PgId(0), &mut tails, CplMode::LastOnly)
            .map_err(|_| ())
            .unwrap();
        assert!(recs.is_empty());
        assert_eq!(alloc.highest_allocated(), Lsn::ZERO);
    }

    #[test]
    fn contiguous_lsns_and_cpl_on_last() {
        let mut alloc = LsnAllocator::new(Lsn::ZERO, LAL_DEFAULT);
        let mut tails = FxHashMap::default();
        let mut b = MtrBuilder::new();
        b.push(TxnId(1), body(0));
        b.push(TxnId(1), body(1));
        b.push(TxnId(1), body(2));
        let recs = b
            .finish(
                &mut alloc,
                |p| PgId(p.0 as u32 % 2),
                &mut tails,
                CplMode::LastOnly,
            )
            .map_err(|_| ())
            .unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].lsn, Lsn(1));
        assert_eq!(recs[1].lsn, Lsn(2));
        assert_eq!(recs[2].lsn, Lsn(3));
        assert_eq!(
            recs.iter().map(|r| r.is_cpl).collect::<Vec<_>>(),
            vec![false, false, true]
        );
    }

    #[test]
    fn backlinks_thread_per_pg() {
        let mut alloc = LsnAllocator::new(Lsn::ZERO, LAL_DEFAULT);
        let mut tails = FxHashMap::default();
        let mut b = MtrBuilder::new();
        // pages 0,2 -> PG0; page 1 -> PG1
        b.push(TxnId(1), body(0));
        b.push(TxnId(1), body(1));
        b.push(TxnId(1), body(2));
        let recs = b
            .finish(
                &mut alloc,
                |p| PgId((p.0 % 2) as u32),
                &mut tails,
                CplMode::LastOnly,
            )
            .map_err(|_| ())
            .unwrap();
        // PG0 chain: lsn1 (prev 0) then lsn3 (prev 1); PG1: lsn2 (prev 0)
        assert_eq!(recs[0].prev_in_pg, Lsn::ZERO);
        assert_eq!(recs[1].prev_in_pg, Lsn::ZERO);
        assert_eq!(recs[2].prev_in_pg, Lsn(1));
        assert_eq!(tails[&PgId(0)], Lsn(3));
        assert_eq!(tails[&PgId(1)], Lsn(2));

        // A second MTR continues the chains.
        let mut b2 = MtrBuilder::new();
        b2.push(TxnId(2), body(0));
        let recs2 = b2
            .finish(
                &mut alloc,
                |p| PgId((p.0 % 2) as u32),
                &mut tails,
                CplMode::LastOnly,
            )
            .map_err(|_| ())
            .unwrap();
        assert_eq!(recs2[0].lsn, Lsn(4));
        assert_eq!(recs2[0].prev_in_pg, Lsn(3));
    }

    #[test]
    fn txn_control_goes_to_pg0() {
        let mut alloc = LsnAllocator::new(Lsn::ZERO, LAL_DEFAULT);
        let mut tails = FxHashMap::default();
        let mut b = MtrBuilder::new();
        b.push(TxnId(9), RecordBody::TxnCommit);
        let recs = b
            .finish(&mut alloc, |_| PgId(7), &mut tails, CplMode::LastOnly)
            .map_err(|_| ())
            .unwrap();
        assert_eq!(recs[0].pg, PgId(0));
        assert!(recs[0].is_cpl);
    }

    #[test]
    fn cpl_every_mode() {
        let mut alloc = LsnAllocator::new(Lsn::ZERO, LAL_DEFAULT);
        let mut tails = FxHashMap::default();
        let mut b = MtrBuilder::new();
        b.push(TxnId(1), body(0));
        b.push(TxnId(1), body(1));
        let recs = b
            .finish(&mut alloc, |_| PgId(0), &mut tails, CplMode::Every)
            .map_err(|_| ())
            .unwrap();
        assert!(recs.iter().all(|r| r.is_cpl));
    }

    #[test]
    fn lal_back_pressure_returns_builder_intact() {
        let mut alloc = LsnAllocator::new(Lsn::ZERO, 2);
        let mut tails = FxHashMap::default();
        let mut b = MtrBuilder::new();
        b.push(TxnId(1), body(0));
        b.push(TxnId(1), body(1));
        b.push(TxnId(1), body(2));
        let (b, err) = b
            .finish(&mut alloc, |_| PgId(0), &mut tails, CplMode::LastOnly)
            .unwrap_err();
        assert_eq!(err.requested, 3);
        assert_eq!(b.len(), 3, "builder returned for retry");
        assert!(tails.is_empty(), "no side effects on failure");
        // after VDL advances, the same MTR succeeds
        alloc.advance_vdl(Lsn(10));
        let recs = b
            .finish(&mut alloc, |_| PgId(0), &mut tails, CplMode::LastOnly)
            .map_err(|_| ())
            .unwrap();
        assert_eq!(recs.len(), 3);
    }
}
