//! Database pages.
//!
//! A page is a fixed-size block of bytes plus its "page LSN" — the LSN of
//! the last log record applied to it. §4.2.3: "a page in the buffer cache
//! must always be of the latest version", enforced via the page LSN, and a
//! page returned by a storage node is "a version of the page as of the
//! current VDL".
//!
//! `PAGE_SIZE` is 4 KiB here (InnoDB uses 16 KiB); it is a pure scale
//! constant — nothing in the protocol depends on it.

use bytes::Bytes;

use crate::lsn::Lsn;

/// Size of every database page in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Page identifier: dense page numbers within the (single) volume.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct PageId(pub u64);

/// A materialized page: data plus the LSN of the last applied record.
#[derive(Clone, PartialEq, Eq)]
pub struct Page {
    data: Vec<u8>,
    /// LSN of the newest log record reflected in `data`; `Lsn::ZERO` for a
    /// freshly formatted page.
    pub lsn: Lsn,
}

impl Default for Page {
    fn default() -> Self {
        Page::new()
    }
}

impl Page {
    /// A zero-filled page at LSN 0.
    pub fn new() -> Page {
        Page {
            data: vec![0u8; PAGE_SIZE],
            lsn: Lsn::ZERO,
        }
    }

    /// Build from raw bytes (must be exactly `PAGE_SIZE` long).
    pub fn from_bytes(data: Vec<u8>, lsn: Lsn) -> Page {
        assert_eq!(data.len(), PAGE_SIZE, "page must be {PAGE_SIZE} bytes");
        Page { data, lsn }
    }

    /// Read-only view of the page contents.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable view. Callers that mutate through this are responsible for
    /// producing the corresponding redo patches (see
    /// [`crate::record::Patch::capture`]) and bumping [`Page::lsn`].
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Copy a byte range out (for before-images).
    pub fn read_range(&self, offset: usize, len: usize) -> Bytes {
        Bytes::copy_from_slice(&self.data[offset..offset + len])
    }

    /// Overwrite a byte range.
    pub fn write_range(&mut self, offset: usize, bytes: &[u8]) {
        self.data[offset..offset + bytes.len()].copy_from_slice(bytes);
    }

    /// A CRC32 of the page contents, used by the storage scrubber
    /// (Fig. 4 step 8 "periodically validate CRC codes on pages").
    pub fn crc(&self) -> u32 {
        crate::codec::crc32(&self.data)
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let nonzero = self.data.iter().filter(|&&b| b != 0).count();
        write!(f, "Page{{lsn:{}, {} nonzero bytes}}", self.lsn, nonzero)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_page_is_zeroed() {
        let p = Page::new();
        assert_eq!(p.lsn, Lsn::ZERO);
        assert!(p.bytes().iter().all(|&b| b == 0));
        assert_eq!(p.bytes().len(), PAGE_SIZE);
    }

    #[test]
    fn write_and_read_ranges() {
        let mut p = Page::new();
        p.write_range(100, b"hello");
        assert_eq!(&p.bytes()[100..105], b"hello");
        assert_eq!(p.read_range(100, 5).as_ref(), b"hello");
    }

    #[test]
    fn crc_changes_with_content() {
        let mut p = Page::new();
        let c0 = p.crc();
        p.write_range(0, &[1]);
        assert_ne!(p.crc(), c0);
    }

    #[test]
    #[should_panic(expected = "page must be")]
    fn from_bytes_enforces_size() {
        let _ = Page::from_bytes(vec![0u8; 100], Lsn::ZERO);
    }

    #[test]
    fn debug_is_compact() {
        let mut p = Page::new();
        p.write_range(0, &[1, 2, 3]);
        p.lsn = Lsn(9);
        assert_eq!(format!("{p:?}"), "Page{lsn:9, 3 nonzero bytes}");
    }
}
