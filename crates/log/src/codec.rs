//! Binary encoding of log records, protected by CRC32.
//!
//! The storage nodes "periodically validate CRC codes" (Fig. 4, step 8);
//! this codec provides those CRCs and gives the simulation realistic wire
//! sizes. The format is little-endian and self-delimiting:
//!
//! ```text
//! u32 crc      — IEEE CRC-32 of everything after this field
//! u32 len      — length of everything after the len field
//! u64 lsn, u64 prev_in_pg, u32 pg, u64 txn, u8 flags(bit0 = cpl)
//! u8  tag      — 0 PageWrite, 1 PageFormat, 2 Begin, 3 Commit, 4 Abort
//! body…
//! ```

use bytes::Bytes;

use crate::lsn::{Lsn, PgId, TxnId};
use crate::page::PageId;
use crate::record::{LogRecord, Patch, RecordBody};

/// CRC-32 (IEEE 802.3, reflected) over a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    // Table generated at first use; kept in a OnceLock to stay allocation-free
    // afterwards.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Not enough bytes for the declared structure.
    Truncated,
    /// CRC mismatch — the record is corrupt.
    BadCrc { expected: u32, actual: u32 },
    /// Unknown body tag.
    BadTag(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "record truncated"),
            DecodeError::BadCrc { expected, actual } => {
                write!(
                    f,
                    "crc mismatch: stored {expected:#x}, computed {actual:#x}"
                )
            }
            DecodeError::BadTag(t) => write!(f, "unknown record tag {t}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn bytes(&mut self) -> Result<Bytes, DecodeError> {
        let n = self.u32()? as usize;
        Ok(Bytes::copy_from_slice(self.take(n)?))
    }
}

/// Exact encoded size of a record, so encode buffers can be sized once
/// and never reallocate mid-record.
pub fn encoded_size(rec: &LogRecord) -> usize {
    // crc + len + (lsn, prev_in_pg, pg, txn, flags, tag)
    let body = match &rec.body {
        RecordBody::PageWrite { patches, .. } => {
            8 + 2
                + patches
                    .iter()
                    .map(|p| 4 + 4 + p.before.len() + 4 + p.after.len())
                    .sum::<usize>()
        }
        RecordBody::PageFormat { init, .. } => 8 + 4 + init.len(),
        RecordBody::TxnBegin | RecordBody::TxnCommit | RecordBody::TxnAbort => 0,
        RecordBody::Undo { data } => 4 + data.len(),
    };
    8 + 30 + body
}

/// Encode one record, appending to `out`.
pub fn encode_into(rec: &LogRecord, out: &mut Vec<u8>) {
    let start = out.len();
    // placeholders for crc + len
    put_u32(out, 0);
    put_u32(out, 0);
    let body_start = out.len();
    put_u64(out, rec.lsn.0);
    put_u64(out, rec.prev_in_pg.0);
    put_u32(out, rec.pg.0);
    put_u64(out, rec.txn.0);
    out.push(rec.is_cpl as u8);
    match &rec.body {
        RecordBody::PageWrite { page, patches } => {
            out.push(0);
            put_u64(out, page.0);
            out.extend_from_slice(&(patches.len() as u16).to_le_bytes());
            for p in patches {
                put_u32(out, p.offset);
                put_bytes(out, &p.before);
                put_bytes(out, &p.after);
            }
        }
        RecordBody::PageFormat { page, init } => {
            out.push(1);
            put_u64(out, page.0);
            put_bytes(out, init);
        }
        RecordBody::TxnBegin => out.push(2),
        RecordBody::TxnCommit => out.push(3),
        RecordBody::TxnAbort => out.push(4),
        RecordBody::Undo { data } => {
            out.push(5);
            put_bytes(out, data);
        }
    }
    let len = (out.len() - body_start) as u32;
    let crc = crc32(&out[body_start..]);
    out[start..start + 4].copy_from_slice(&crc.to_le_bytes());
    out[start + 4..start + 8].copy_from_slice(&len.to_le_bytes());
}

/// Encode one record to a fresh buffer, sized exactly up front.
pub fn encode(rec: &LogRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(encoded_size(rec));
    encode_into(rec, &mut out);
    out
}

/// Encode one record into a reusable scratch buffer (cleared first);
/// returns the encoded slice. Steady-state callers (the scrub path, write
/// staging) pay zero allocations once the scratch has warmed up.
pub fn encode_scratch<'a>(rec: &LogRecord, scratch: &'a mut Vec<u8>) -> &'a [u8] {
    scratch.clear();
    let need = encoded_size(rec);
    if scratch.capacity() < need {
        scratch.reserve_exact(need - scratch.capacity());
    }
    encode_into(rec, scratch);
    scratch.as_slice()
}

/// Decode one record from the front of `buf`; returns the record and the
/// number of bytes consumed.
pub fn decode(buf: &[u8]) -> Result<(LogRecord, usize), DecodeError> {
    let mut r = Reader { buf, pos: 0 };
    let crc_stored = r.u32()?;
    let len = r.u32()? as usize;
    let body = r.take(len)?;
    let actual = crc32(body);
    if actual != crc_stored {
        return Err(DecodeError::BadCrc {
            expected: crc_stored,
            actual,
        });
    }
    let consumed = 8 + len;
    let mut r = Reader { buf: body, pos: 0 };
    let lsn = Lsn(r.u64()?);
    let prev_in_pg = Lsn(r.u64()?);
    let pg = PgId(r.u32()?);
    let txn = TxnId(r.u64()?);
    let is_cpl = r.u8()? != 0;
    let tag = r.u8()?;
    let body = match tag {
        0 => {
            let page = PageId(r.u64()?);
            let n = r.u16()? as usize;
            let mut patches = Vec::with_capacity(n);
            for _ in 0..n {
                let offset = r.u32()?;
                let before = r.bytes()?;
                let after = r.bytes()?;
                patches.push(Patch {
                    offset,
                    before,
                    after,
                });
            }
            RecordBody::PageWrite { page, patches }
        }
        1 => RecordBody::PageFormat {
            page: PageId(r.u64()?),
            init: r.bytes()?,
        },
        2 => RecordBody::TxnBegin,
        3 => RecordBody::TxnCommit,
        4 => RecordBody::TxnAbort,
        5 => RecordBody::Undo { data: r.bytes()? },
        t => return Err(DecodeError::BadTag(t)),
    };
    Ok((
        LogRecord {
            lsn,
            prev_in_pg,
            pg,
            txn,
            is_cpl,
            body,
        },
        consumed,
    ))
}

/// Encode a batch of records back-to-back, sized exactly up front.
pub fn encode_batch(recs: &[LogRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(recs.iter().map(encoded_size).sum());
    for r in recs {
        encode_into(r, &mut out);
    }
    out
}

/// Decode a back-to-back batch.
pub fn decode_batch(mut buf: &[u8]) -> Result<Vec<LogRecord>, DecodeError> {
    let mut out = Vec::new();
    while !buf.is_empty() {
        let (rec, n) = decode(buf)?;
        out.push(rec);
        buf = &buf[n..];
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LogRecord {
        LogRecord {
            lsn: Lsn(42),
            prev_in_pg: Lsn(40),
            pg: PgId(3),
            txn: TxnId(9),
            is_cpl: true,
            body: RecordBody::PageWrite {
                page: PageId(17),
                patches: vec![Patch {
                    offset: 128,
                    before: Bytes::from_static(b"old"),
                    after: Bytes::from_static(b"new"),
                }],
            },
        }
    }

    #[test]
    fn crc32_known_vector() {
        // Standard test vector: CRC32("123456789") = 0xCBF43926
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_all_variants() {
        let variants = vec![
            sample(),
            LogRecord {
                body: RecordBody::PageFormat {
                    page: PageId(5),
                    init: Bytes::from_static(b"header"),
                },
                ..sample()
            },
            LogRecord {
                body: RecordBody::TxnBegin,
                ..sample()
            },
            LogRecord {
                body: RecordBody::TxnCommit,
                ..sample()
            },
            LogRecord {
                body: RecordBody::TxnAbort,
                ..sample()
            },
            LogRecord {
                body: RecordBody::Undo {
                    data: Bytes::from_static(b"inverse-op"),
                },
                ..sample()
            },
        ];
        for rec in variants {
            let buf = encode(&rec);
            let (back, n) = decode(&buf).unwrap();
            assert_eq!(n, buf.len());
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn encoded_size_is_exact() {
        let variants = vec![
            sample(),
            LogRecord {
                body: RecordBody::PageFormat {
                    page: PageId(5),
                    init: Bytes::from_static(b"header"),
                },
                ..sample()
            },
            LogRecord {
                body: RecordBody::TxnBegin,
                ..sample()
            },
            LogRecord {
                body: RecordBody::Undo {
                    data: Bytes::from_static(b"inverse-op"),
                },
                ..sample()
            },
        ];
        for rec in variants {
            let buf = encode(&rec);
            assert_eq!(buf.len(), encoded_size(&rec));
            assert_eq!(buf.capacity(), encoded_size(&rec));
        }
    }

    #[test]
    fn scratch_encoding_matches_fresh() {
        let mut scratch = Vec::new();
        let recs = [
            sample(),
            LogRecord {
                lsn: Lsn(43),
                body: RecordBody::TxnCommit,
                ..sample()
            },
        ];
        for rec in &recs {
            let fresh = encode(rec);
            let reused = encode_scratch(rec, &mut scratch);
            assert_eq!(reused, fresh.as_slice());
        }
        // the scratch kept its (largest) capacity across records
        assert!(scratch.capacity() >= recs.iter().map(encoded_size).max().unwrap());
    }

    #[test]
    fn corruption_detected() {
        let mut buf = encode(&sample());
        let mid = buf.len() / 2;
        buf[mid] ^= 0xFF;
        assert!(matches!(decode(&buf), Err(DecodeError::BadCrc { .. })));
    }

    #[test]
    fn truncation_detected() {
        let buf = encode(&sample());
        assert_eq!(decode(&buf[..4]), Err(DecodeError::Truncated));
        assert_eq!(decode(&buf[..buf.len() - 1]), Err(DecodeError::Truncated));
    }

    #[test]
    fn batch_roundtrip() {
        let recs = vec![
            sample(),
            LogRecord {
                lsn: Lsn(43),
                body: RecordBody::TxnCommit,
                ..sample()
            },
        ];
        let buf = encode_batch(&recs);
        let back = decode_batch(&buf).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn empty_batch() {
        assert_eq!(decode_batch(&[]).unwrap(), Vec::<LogRecord>::new());
    }
}
