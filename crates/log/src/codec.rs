//! Binary encoding of log records, protected by CRC32.
//!
//! The storage nodes "periodically validate CRC codes" (Fig. 4, step 8);
//! this codec provides those CRCs and gives the simulation realistic wire
//! sizes. The format is little-endian and self-delimiting:
//!
//! ```text
//! u32 crc      — IEEE CRC-32 of everything after this field
//! u32 len      — length of everything after the len field
//! u64 lsn, u64 prev_in_pg, u32 pg, u64 txn, u8 flags(bit0 = cpl)
//! u8  tag      — 0 PageWrite, 1 PageFormat, 2 Begin, 3 Commit, 4 Abort
//! body…
//! ```

use bytes::Bytes;

use crate::lsn::{Lsn, PgId, TxnId};
use crate::page::PageId;
use crate::record::{LogRecord, Patch, RecordBody};

/// CRC-32 (IEEE 802.3, reflected) over a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    // Table generated at first use; kept in a OnceLock to stay allocation-free
    // afterwards.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Not enough bytes for the declared structure.
    Truncated,
    /// CRC mismatch — the record is corrupt.
    BadCrc { expected: u32, actual: u32 },
    /// Unknown body tag.
    BadTag(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "record truncated"),
            DecodeError::BadCrc { expected, actual } => {
                write!(
                    f,
                    "crc mismatch: stored {expected:#x}, computed {actual:#x}"
                )
            }
            DecodeError::BadTag(t) => write!(f, "unknown record tag {t}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn bytes(&mut self) -> Result<Bytes, DecodeError> {
        let n = self.u32()? as usize;
        Ok(Bytes::copy_from_slice(self.take(n)?))
    }
}

/// Exact encoded size of a record, so encode buffers can be sized once
/// and never reallocate mid-record.
pub fn encoded_size(rec: &LogRecord) -> usize {
    // crc + len + (lsn, prev_in_pg, pg, txn, flags, tag)
    let body = match &rec.body {
        RecordBody::PageWrite { patches, .. } => {
            8 + 2
                + patches
                    .iter()
                    .map(|p| 4 + 4 + p.before.len() + 4 + p.after.len())
                    .sum::<usize>()
        }
        RecordBody::PageFormat { init, .. } => 8 + 4 + init.len(),
        RecordBody::TxnBegin | RecordBody::TxnCommit | RecordBody::TxnAbort => 0,
        RecordBody::Undo { data } => 4 + data.len(),
    };
    8 + 30 + body
}

/// Encode one record, appending to `out`.
pub fn encode_into(rec: &LogRecord, out: &mut Vec<u8>) {
    let start = out.len();
    // placeholders for crc + len
    put_u32(out, 0);
    put_u32(out, 0);
    let body_start = out.len();
    put_u64(out, rec.lsn.0);
    put_u64(out, rec.prev_in_pg.0);
    put_u32(out, rec.pg.0);
    put_u64(out, rec.txn.0);
    out.push(rec.is_cpl as u8);
    match &rec.body {
        RecordBody::PageWrite { page, patches } => {
            out.push(0);
            put_u64(out, page.0);
            out.extend_from_slice(&(patches.len() as u16).to_le_bytes());
            for p in patches {
                put_u32(out, p.offset);
                put_bytes(out, &p.before);
                put_bytes(out, &p.after);
            }
        }
        RecordBody::PageFormat { page, init } => {
            out.push(1);
            put_u64(out, page.0);
            put_bytes(out, init);
        }
        RecordBody::TxnBegin => out.push(2),
        RecordBody::TxnCommit => out.push(3),
        RecordBody::TxnAbort => out.push(4),
        RecordBody::Undo { data } => {
            out.push(5);
            put_bytes(out, data);
        }
    }
    let len = (out.len() - body_start) as u32;
    let crc = crc32(&out[body_start..]);
    out[start..start + 4].copy_from_slice(&crc.to_le_bytes());
    out[start + 4..start + 8].copy_from_slice(&len.to_le_bytes());
}

/// Encode one record to a fresh buffer, sized exactly up front.
pub fn encode(rec: &LogRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(encoded_size(rec));
    encode_into(rec, &mut out);
    out
}

/// Encode one record into a reusable scratch buffer (cleared first);
/// returns the encoded slice. Steady-state callers (the scrub path, write
/// staging) pay zero allocations once the scratch has warmed up.
pub fn encode_scratch<'a>(rec: &LogRecord, scratch: &'a mut Vec<u8>) -> &'a [u8] {
    scratch.clear();
    let need = encoded_size(rec);
    if scratch.capacity() < need {
        scratch.reserve_exact(need - scratch.capacity());
    }
    encode_into(rec, scratch);
    scratch.as_slice()
}

/// Decode one record from the front of `buf`; returns the record and the
/// number of bytes consumed.
pub fn decode(buf: &[u8]) -> Result<(LogRecord, usize), DecodeError> {
    let mut r = Reader { buf, pos: 0 };
    let crc_stored = r.u32()?;
    let len = r.u32()? as usize;
    let body = r.take(len)?;
    let actual = crc32(body);
    if actual != crc_stored {
        return Err(DecodeError::BadCrc {
            expected: crc_stored,
            actual,
        });
    }
    let consumed = 8 + len;
    let mut r = Reader { buf: body, pos: 0 };
    let lsn = Lsn(r.u64()?);
    let prev_in_pg = Lsn(r.u64()?);
    let pg = PgId(r.u32()?);
    let txn = TxnId(r.u64()?);
    let is_cpl = r.u8()? != 0;
    let tag = r.u8()?;
    let body = match tag {
        0 => {
            let page = PageId(r.u64()?);
            let n = r.u16()? as usize;
            let mut patches = Vec::with_capacity(n);
            for _ in 0..n {
                let offset = r.u32()?;
                let before = r.bytes()?;
                let after = r.bytes()?;
                patches.push(Patch {
                    offset,
                    before,
                    after,
                });
            }
            RecordBody::PageWrite { page, patches }
        }
        1 => RecordBody::PageFormat {
            page: PageId(r.u64()?),
            init: r.bytes()?,
        },
        2 => RecordBody::TxnBegin,
        3 => RecordBody::TxnCommit,
        4 => RecordBody::TxnAbort,
        5 => RecordBody::Undo { data: r.bytes()? },
        t => return Err(DecodeError::BadTag(t)),
    };
    Ok((
        LogRecord {
            lsn,
            prev_in_pg,
            pg,
            txn,
            is_cpl,
            body,
        },
        consumed,
    ))
}

// ------------------------------------------------------------------
// Delta/varint batch format (PR6 wire slimming)
// ------------------------------------------------------------------
//
// The per-record format above spends 38 fixed header bytes per record
// (crc, len, and four full-width ids). Inside one shipped batch those ids
// are heavily correlated: LSNs ascend in small steps, the PG backlink
// points a short distance back along the same chain, pg/txn/page repeat
// in runs. The batch format exploits that:
//
// ```text
// u32 crc          — IEEE CRC-32 of everything after this field
// varint count
// per record:
//   varint  zigzag(lsn   - prev record's lsn)     (first: delta from 0)
//   varint  lsn - prev_in_pg                      (backlink distance)
//   varint  zigzag(pg    - prev record's pg)
//   varint  zigzag(txn   - prev record's txn)
//   u8      tag | cpl-bit(0x08)
//   body    (page ids zigzag-delta'd against the previous page id;
//            all lengths and offsets varint)
// ```
//
// All varints are LEB128. One CRC covers the whole batch — storage
// validates batches, not records, so per-record CRCs bought nothing.
// [`batch_wire_size`] computes the exact encoded size without encoding,
// which is what the network and disk accounting use.

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Encoded length of a LEB128 varint.
fn varint_len(v: u64) -> usize {
    (64 - (v | 1).leading_zeros() as usize).div_ceil(7)
}

impl Reader<'_> {
    fn varint(&mut self) -> Result<u64, DecodeError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 64 {
                return Err(DecodeError::Truncated);
            }
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }
}

/// Running delta state shared by the encoder, decoder, and sizer so the
/// three can never disagree about the format.
#[derive(Default)]
struct DeltaCtx {
    lsn: u64,
    pg: i64,
    txn: i64,
    page: i64,
}

/// Exact size of [`encode_batch_delta`]'s output for these records —
/// allocation-free, for wire and disk accounting on the hot path.
pub fn batch_wire_size(recs: &[LogRecord]) -> usize {
    let mut d = DeltaCtx::default();
    let mut n = 4 + varint_len(recs.len() as u64);
    for rec in recs {
        n += varint_len(zigzag(rec.lsn.0 as i64 - d.lsn as i64));
        n += varint_len(rec.lsn.0.wrapping_sub(rec.prev_in_pg.0));
        n += varint_len(zigzag(rec.pg.0 as i64 - d.pg));
        n += varint_len(zigzag(rec.txn.0 as i64 - d.txn));
        n += 1; // tag | cpl
        d.lsn = rec.lsn.0;
        d.pg = rec.pg.0 as i64;
        d.txn = rec.txn.0 as i64;
        match &rec.body {
            RecordBody::PageWrite { page, patches } => {
                n += varint_len(zigzag(page.0 as i64 - d.page));
                d.page = page.0 as i64;
                n += varint_len(patches.len() as u64);
                for p in patches {
                    n += varint_len(p.offset as u64);
                    n += varint_len(p.before.len() as u64) + p.before.len();
                    n += varint_len(p.after.len() as u64) + p.after.len();
                }
            }
            RecordBody::PageFormat { page, init } => {
                n += varint_len(zigzag(page.0 as i64 - d.page));
                d.page = page.0 as i64;
                n += varint_len(init.len() as u64) + init.len();
            }
            RecordBody::TxnBegin | RecordBody::TxnCommit | RecordBody::TxnAbort => {}
            RecordBody::Undo { data } => {
                n += varint_len(data.len() as u64) + data.len();
            }
        }
    }
    n
}

/// Encode a batch in the delta/varint format.
pub fn encode_batch_delta(recs: &[LogRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(batch_wire_size(recs));
    put_u32(&mut out, 0); // crc placeholder
    let mut d = DeltaCtx::default();
    put_varint(&mut out, recs.len() as u64);
    for rec in recs {
        put_varint(&mut out, zigzag(rec.lsn.0 as i64 - d.lsn as i64));
        put_varint(&mut out, rec.lsn.0.wrapping_sub(rec.prev_in_pg.0));
        put_varint(&mut out, zigzag(rec.pg.0 as i64 - d.pg));
        put_varint(&mut out, zigzag(rec.txn.0 as i64 - d.txn));
        d.lsn = rec.lsn.0;
        d.pg = rec.pg.0 as i64;
        d.txn = rec.txn.0 as i64;
        let cpl = if rec.is_cpl { 0x08 } else { 0 };
        match &rec.body {
            RecordBody::PageWrite { page, patches } => {
                out.push(cpl);
                put_varint(&mut out, zigzag(page.0 as i64 - d.page));
                d.page = page.0 as i64;
                put_varint(&mut out, patches.len() as u64);
                for p in patches {
                    put_varint(&mut out, p.offset as u64);
                    put_varint(&mut out, p.before.len() as u64);
                    out.extend_from_slice(&p.before);
                    put_varint(&mut out, p.after.len() as u64);
                    out.extend_from_slice(&p.after);
                }
            }
            RecordBody::PageFormat { page, init } => {
                out.push(1 | cpl);
                put_varint(&mut out, zigzag(page.0 as i64 - d.page));
                d.page = page.0 as i64;
                put_varint(&mut out, init.len() as u64);
                out.extend_from_slice(init);
            }
            RecordBody::TxnBegin => out.push(2 | cpl),
            RecordBody::TxnCommit => out.push(3 | cpl),
            RecordBody::TxnAbort => out.push(4 | cpl),
            RecordBody::Undo { data } => {
                out.push(5 | cpl);
                put_varint(&mut out, data.len() as u64);
                out.extend_from_slice(data);
            }
        }
    }
    let crc = crc32(&out[4..]);
    out[..4].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Decode a delta/varint batch.
pub fn decode_batch_delta(buf: &[u8]) -> Result<Vec<LogRecord>, DecodeError> {
    let mut r = Reader { buf, pos: 0 };
    let crc_stored = r.u32()?;
    let actual = crc32(&buf[4..]);
    if actual != crc_stored {
        return Err(DecodeError::BadCrc {
            expected: crc_stored,
            actual,
        });
    }
    let count = r.varint()? as usize;
    let mut d = DeltaCtx::default();
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let lsn = (d.lsn as i64 + unzigzag(r.varint()?)) as u64;
        let prev_in_pg = lsn.wrapping_sub(r.varint()?);
        let pg = d.pg + unzigzag(r.varint()?);
        let txn = d.txn + unzigzag(r.varint()?);
        d.lsn = lsn;
        d.pg = pg;
        d.txn = txn;
        let tag_cpl = r.u8()?;
        let is_cpl = tag_cpl & 0x08 != 0;
        let read_page = |r: &mut Reader<'_>, d: &mut DeltaCtx| -> Result<u64, DecodeError> {
            let page = d.page + unzigzag(r.varint()?);
            d.page = page;
            Ok(page as u64)
        };
        let body = match tag_cpl & 0x07 {
            0 => {
                let page = PageId(read_page(&mut r, &mut d)?);
                let n = r.varint()? as usize;
                let mut patches = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let offset = r.varint()? as u32;
                    let blen = r.varint()? as usize;
                    let before = Bytes::copy_from_slice(r.take(blen)?);
                    let alen = r.varint()? as usize;
                    let after = Bytes::copy_from_slice(r.take(alen)?);
                    patches.push(Patch {
                        offset,
                        before,
                        after,
                    });
                }
                RecordBody::PageWrite { page, patches }
            }
            1 => {
                let page = PageId(read_page(&mut r, &mut d)?);
                let len = r.varint()? as usize;
                RecordBody::PageFormat {
                    page,
                    init: Bytes::copy_from_slice(r.take(len)?),
                }
            }
            2 => RecordBody::TxnBegin,
            3 => RecordBody::TxnCommit,
            4 => RecordBody::TxnAbort,
            5 => {
                let len = r.varint()? as usize;
                RecordBody::Undo {
                    data: Bytes::copy_from_slice(r.take(len)?),
                }
            }
            t => return Err(DecodeError::BadTag(t)),
        };
        out.push(LogRecord {
            lsn: Lsn(lsn),
            prev_in_pg: Lsn(prev_in_pg),
            pg: PgId(pg as u32),
            txn: TxnId(txn as u64),
            is_cpl,
            body,
        });
    }
    if r.pos != buf.len() {
        return Err(DecodeError::Truncated);
    }
    Ok(out)
}

/// Encode a batch of records back-to-back, sized exactly up front.
pub fn encode_batch(recs: &[LogRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(recs.iter().map(encoded_size).sum());
    for r in recs {
        encode_into(r, &mut out);
    }
    out
}

/// Decode a back-to-back batch.
pub fn decode_batch(mut buf: &[u8]) -> Result<Vec<LogRecord>, DecodeError> {
    let mut out = Vec::new();
    while !buf.is_empty() {
        let (rec, n) = decode(buf)?;
        out.push(rec);
        buf = &buf[n..];
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LogRecord {
        LogRecord {
            lsn: Lsn(42),
            prev_in_pg: Lsn(40),
            pg: PgId(3),
            txn: TxnId(9),
            is_cpl: true,
            body: RecordBody::PageWrite {
                page: PageId(17),
                patches: vec![Patch {
                    offset: 128,
                    before: Bytes::from_static(b"old"),
                    after: Bytes::from_static(b"new"),
                }],
            },
        }
    }

    #[test]
    fn crc32_known_vector() {
        // Standard test vector: CRC32("123456789") = 0xCBF43926
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_all_variants() {
        let variants = vec![
            sample(),
            LogRecord {
                body: RecordBody::PageFormat {
                    page: PageId(5),
                    init: Bytes::from_static(b"header"),
                },
                ..sample()
            },
            LogRecord {
                body: RecordBody::TxnBegin,
                ..sample()
            },
            LogRecord {
                body: RecordBody::TxnCommit,
                ..sample()
            },
            LogRecord {
                body: RecordBody::TxnAbort,
                ..sample()
            },
            LogRecord {
                body: RecordBody::Undo {
                    data: Bytes::from_static(b"inverse-op"),
                },
                ..sample()
            },
        ];
        for rec in variants {
            let buf = encode(&rec);
            let (back, n) = decode(&buf).unwrap();
            assert_eq!(n, buf.len());
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn encoded_size_is_exact() {
        let variants = vec![
            sample(),
            LogRecord {
                body: RecordBody::PageFormat {
                    page: PageId(5),
                    init: Bytes::from_static(b"header"),
                },
                ..sample()
            },
            LogRecord {
                body: RecordBody::TxnBegin,
                ..sample()
            },
            LogRecord {
                body: RecordBody::Undo {
                    data: Bytes::from_static(b"inverse-op"),
                },
                ..sample()
            },
        ];
        for rec in variants {
            let buf = encode(&rec);
            assert_eq!(buf.len(), encoded_size(&rec));
            assert_eq!(buf.capacity(), encoded_size(&rec));
        }
    }

    #[test]
    fn scratch_encoding_matches_fresh() {
        let mut scratch = Vec::new();
        let recs = [
            sample(),
            LogRecord {
                lsn: Lsn(43),
                body: RecordBody::TxnCommit,
                ..sample()
            },
        ];
        for rec in &recs {
            let fresh = encode(rec);
            let reused = encode_scratch(rec, &mut scratch);
            assert_eq!(reused, fresh.as_slice());
        }
        // the scratch kept its (largest) capacity across records
        assert!(scratch.capacity() >= recs.iter().map(encoded_size).max().unwrap());
    }

    #[test]
    fn corruption_detected() {
        let mut buf = encode(&sample());
        let mid = buf.len() / 2;
        buf[mid] ^= 0xFF;
        assert!(matches!(decode(&buf), Err(DecodeError::BadCrc { .. })));
    }

    #[test]
    fn truncation_detected() {
        let buf = encode(&sample());
        assert_eq!(decode(&buf[..4]), Err(DecodeError::Truncated));
        assert_eq!(decode(&buf[..buf.len() - 1]), Err(DecodeError::Truncated));
    }

    #[test]
    fn batch_roundtrip() {
        let recs = vec![
            sample(),
            LogRecord {
                lsn: Lsn(43),
                body: RecordBody::TxnCommit,
                ..sample()
            },
        ];
        let buf = encode_batch(&recs);
        let back = decode_batch(&buf).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn empty_batch() {
        assert_eq!(decode_batch(&[]).unwrap(), Vec::<LogRecord>::new());
    }

    /// A realistic shipped batch: ascending LSNs, short backlinks, runs of
    /// the same pg/txn — the correlations the delta format exploits.
    fn delta_sample_batch() -> Vec<LogRecord> {
        let mut recs = Vec::new();
        let mut prev_in_pg = 0u64;
        for i in 0..20u64 {
            let lsn = 100 + i * 3;
            recs.push(LogRecord {
                lsn: Lsn(lsn),
                prev_in_pg: Lsn(prev_in_pg),
                pg: PgId((i % 2) as u32),
                txn: TxnId(9 + i / 5),
                is_cpl: i % 5 == 4,
                body: match i % 4 {
                    0 => RecordBody::PageWrite {
                        page: PageId(17 + i),
                        patches: vec![Patch {
                            offset: 128,
                            before: Bytes::from(vec![0u8; 32]),
                            after: Bytes::from(vec![1u8; 32]),
                        }],
                    },
                    1 => RecordBody::Undo {
                        data: Bytes::from_static(b"inverse-op"),
                    },
                    2 => RecordBody::TxnBegin,
                    _ => RecordBody::TxnCommit,
                },
            });
            prev_in_pg = lsn;
        }
        recs
    }

    #[test]
    fn delta_batch_roundtrip() {
        let recs = delta_sample_batch();
        let buf = encode_batch_delta(&recs);
        assert_eq!(decode_batch_delta(&buf).unwrap(), recs);
        // single records and variant coverage
        for rec in [
            sample(),
            LogRecord {
                body: RecordBody::PageFormat {
                    page: PageId(5),
                    init: Bytes::from_static(b"header"),
                },
                ..sample()
            },
            LogRecord {
                prev_in_pg: Lsn::ZERO,
                body: RecordBody::TxnAbort,
                ..sample()
            },
        ] {
            let one = vec![rec];
            assert_eq!(decode_batch_delta(&encode_batch_delta(&one)).unwrap(), one);
        }
        assert_eq!(
            decode_batch_delta(&encode_batch_delta(&[])).unwrap(),
            Vec::<LogRecord>::new()
        );
    }

    #[test]
    fn delta_batch_size_is_exact() {
        let recs = delta_sample_batch();
        let buf = encode_batch_delta(&recs);
        assert_eq!(buf.len(), batch_wire_size(&recs));
        assert_eq!(buf.capacity(), batch_wire_size(&recs));
        assert_eq!(batch_wire_size(&[]), encode_batch_delta(&[]).len());
    }

    #[test]
    fn delta_batch_is_smaller_than_fixed() {
        let recs = delta_sample_batch();
        let fixed: usize = recs.iter().map(encoded_size).sum();
        let delta = batch_wire_size(&recs);
        // the headline claim: correlated headers compress hard — at least
        // 25 fewer bytes per record (38 fixed header bytes become a few)
        assert!(
            delta + 25 * recs.len() <= fixed,
            "delta {delta} fixed {fixed}"
        );
    }

    #[test]
    fn delta_batch_corruption_detected() {
        let recs = delta_sample_batch();
        let mut buf = encode_batch_delta(&recs);
        let mid = buf.len() / 2;
        buf[mid] ^= 0xFF;
        assert!(matches!(
            decode_batch_delta(&buf),
            Err(DecodeError::BadCrc { .. })
        ));
        let buf = encode_batch_delta(&recs);
        assert!(decode_batch_delta(&buf[..3]).is_err());
    }

    #[test]
    fn varint_len_matches_encoding() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut out = Vec::new();
            put_varint(&mut out, v);
            assert_eq!(out.len(), varint_len(v), "v={v}");
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // small magnitudes stay small on the wire
        assert!(varint_len(zigzag(-3)) == 1);
        assert!(varint_len(zigzag(3)) == 1);
    }
}
