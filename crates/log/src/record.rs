//! Redo log records.
//!
//! §3.2: "Each redo log record consists of the difference between the
//! after-image and the before-image of the page that was modified. A log
//! record can be applied to the before-image of the page to produce its
//! after-image."
//!
//! We keep *both* images in each patch. The after-image is what the
//! applicator writes forward; the before-image is what the engine's undo
//! path applies to roll back an in-flight transaction after a crash
//! (InnoDB keeps before-images in undo segments; carrying them on the
//! record is equivalent for our purposes and keeps rollback testable).

use bytes::Bytes;

use crate::lsn::{Lsn, PgId, TxnId};
use crate::page::{Page, PageId};

/// One contiguous byte-range modification of a page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Patch {
    pub offset: u32,
    pub before: Bytes,
    pub after: Bytes,
}

impl Patch {
    /// Capture a patch by comparing a page's current contents (the
    /// before-image) against `after` at `offset`.
    pub fn capture(page: &Page, offset: usize, after: &[u8]) -> Patch {
        Patch {
            offset: offset as u32,
            before: page.read_range(offset, after.len()),
            after: Bytes::copy_from_slice(after),
        }
    }

    /// Size of the patch payload in bytes (both images plus header).
    pub fn wire_size(&self) -> usize {
        4 + 4 + self.before.len() + self.after.len()
    }
}

/// What a record does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordBody {
    /// Apply byte patches to a page.
    PageWrite {
        page: PageId,
        patches: Vec<Patch>,
    },
    /// Format a page from zeroes (allocation / extension). The full image
    /// is implicit: the page becomes all zeroes then `init` is applied at
    /// offset 0.
    PageFormat {
        page: PageId,
        init: Bytes,
    },
    /// Transaction control markers. They occupy LSNs like any record (as in
    /// InnoDB, where commit is itself a redo record) and let recovery build
    /// the committed set.
    TxnBegin,
    TxnCommit,
    TxnAbort,
    /// A logical undo record: an engine-encoded inverse operation, written
    /// alongside each forward change exactly as InnoDB redo-logs its undo
    /// pages. Crash recovery replays these (newest first) to roll back
    /// in-flight transactions (§4.3 "undo recovery").
    Undo {
        data: bytes::Bytes,
    },
}

impl RecordBody {
    /// The page this record touches, if any.
    pub fn page(&self) -> Option<PageId> {
        match self {
            RecordBody::PageWrite { page, .. } | RecordBody::PageFormat { page, .. } => Some(*page),
            _ => None,
        }
    }
}

/// A complete redo log record as shipped to storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// This record's LSN (unique, totally ordered across the volume).
    pub lsn: Lsn,
    /// §4.2.1: "Each log record contains a backlink that identifies the
    /// previous log record for that PG" — `Lsn::ZERO` for the PG's first.
    pub prev_in_pg: Lsn,
    /// The protection group this record belongs to (derived from its page).
    pub pg: PgId,
    /// Owning transaction ([`TxnId::SYSTEM`] for engine-internal work).
    pub txn: TxnId,
    /// Consistency Point LSN tag: true on the final record of each
    /// mini-transaction (§4.1: "the final log record in a mini-transaction
    /// is a CPL").
    pub is_cpl: bool,
    pub body: RecordBody,
}

impl LogRecord {
    /// Approximate serialized size, used for network accounting.
    pub fn wire_size(&self) -> usize {
        let body = match &self.body {
            RecordBody::PageWrite { patches, .. } => {
                8 + patches.iter().map(Patch::wire_size).sum::<usize>()
            }
            RecordBody::PageFormat { init, .. } => 8 + init.len(),
            RecordBody::Undo { data } => 4 + data.len(),
            _ => 1,
        };
        // lsn + prev + pg + txn + flags + body tag
        8 + 8 + 4 + 8 + 1 + 1 + body
    }

    /// The page this record touches, if any.
    pub fn page(&self) -> Option<PageId> {
        self.body.page()
    }

    /// True for transaction-control records (no page payload).
    pub fn is_txn_control(&self) -> bool {
        matches!(
            self.body,
            RecordBody::TxnBegin | RecordBody::TxnCommit | RecordBody::TxnAbort
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(body: RecordBody) -> LogRecord {
        LogRecord {
            lsn: Lsn(10),
            prev_in_pg: Lsn(7),
            pg: PgId(0),
            txn: TxnId(1),
            is_cpl: true,
            body,
        }
    }

    #[test]
    fn capture_records_both_images() {
        let mut page = Page::new();
        page.write_range(64, b"old!");
        let p = Patch::capture(&page, 64, b"new!");
        assert_eq!(p.before.as_ref(), b"old!");
        assert_eq!(p.after.as_ref(), b"new!");
        assert_eq!(p.offset, 64);
        assert_eq!(p.wire_size(), 4 + 4 + 4 + 4);
    }

    #[test]
    fn record_page_extraction() {
        let r = rec(RecordBody::PageWrite {
            page: PageId(3),
            patches: vec![],
        });
        assert_eq!(r.page(), Some(PageId(3)));
        assert!(!r.is_txn_control());
        let c = rec(RecordBody::TxnCommit);
        assert_eq!(c.page(), None);
        assert!(c.is_txn_control());
    }

    #[test]
    fn wire_sizes_scale_with_payload() {
        let small = rec(RecordBody::TxnBegin).wire_size();
        let big = rec(RecordBody::PageWrite {
            page: PageId(1),
            patches: vec![Patch {
                offset: 0,
                before: Bytes::from(vec![0u8; 100]),
                after: Bytes::from(vec![1u8; 100]),
            }],
        })
        .wire_size();
        assert!(big > small + 190, "small {small} big {big}");
    }
}
