//! # aurora-baseline — the paper's comparison system
//!
//! A traditional MySQL/InnoDB-style engine on networked block storage,
//! faithful to Figure 2 of the paper ("Network IO in mirrored MySQL"):
//!
//! * the engine writes a **redo log (WAL)**, a **binlog**, **data pages**,
//!   a **double-write** of each page, and metadata — "many different types
//!   of writes often representing the same information in multiple ways",
//! * in the *mirrored* configuration, every block write is issued to the
//!   primary EBS volume (which chains to an in-AZ mirror), then shipped
//!   synchronously to a standby instance in another AZ whose own EBS pair
//!   must also complete — "steps 1, 3, and 5 are sequential and
//!   synchronous. Latency is additive … the system is at the mercy of
//!   outliers", a de-facto 4/4 write quorum,
//! * dirty pages must be flushed on eviction and at checkpoints, which
//!   stalls foreground work ("background writes of pages and checkpointing
//!   have positive correlation with the foreground load"),
//! * crash recovery replays the redo log from the last checkpoint before
//!   the database can open (ARIES-style), unlike Aurora's instant start,
//! * replication is by binlog shipping to a replica that applies
//!   transactions single-threaded — the source of the paper's multi-minute
//!   replica lag (Table 4, Figure 11).
//!
//! The access path (B+-tree, buffer pool, row locks) is shared with
//! `aurora-core` — the paper's own framing: Aurora *is* MySQL above the IO
//! subsystem, so the IO path is the only experimental variable.

pub mod ebs;
pub mod engine;
pub mod mysql_cluster;
pub mod replica;
pub mod wire;

pub use ebs::{EbsMirror, EbsVolume};
pub use engine::{MysqlConfig, MysqlEngine, MysqlFlavor};
pub use mysql_cluster::{MysqlCluster, MysqlClusterConfig};
pub use replica::BinlogReplica;
