//! Builder for the traditional topology of Figure 2: primary instance
//! with an EBS volume + in-AZ mirror in AZ1; optionally a standby instance
//! with its own EBS pair in AZ2 (the *mirrored* configuration), and binlog
//! replication replicas.

use aurora_core::engine::InstanceSpec;
use aurora_sim::{DiskSpec, NodeId, NodeOpts, Probe, Sim, SimDuration, Zone};

use crate::ebs::{EbsMirror, EbsVolume};
use crate::engine::{MysqlConfig, MysqlEngine, MysqlFlavor};
use crate::replica::{BinlogReplica, StandbyInstance};

/// What to build.
#[derive(Debug, Clone)]
pub struct MysqlClusterConfig {
    pub seed: u64,
    pub instance: InstanceSpec,
    pub flavor: MysqlFlavor,
    /// Mirrored configuration: standby instance + EBS pair in AZ2.
    pub mirrored: bool,
    /// Binlog replication replicas and their single-thread apply cost.
    pub binlog_replicas: usize,
    pub replica_apply_cost: SimDuration,
    pub bootstrap_rows: u64,
    pub row_size: usize,
    /// Provisioned IOPS of each EBS volume (paper: 30K).
    pub ebs_iops: u64,
    /// Callback knobs applied to the engine config.
    pub group_commit_limit: Option<usize>,
    pub checkpoint_every_records: Option<u64>,
    /// Inject occasional slow EBS IOs: (outlier_ms, probability). Models a
    /// gray volume — the "poor outlier performance" of §6.2.
    pub ebs_outlier: Option<(u64, f64)>,
}

impl Default for MysqlClusterConfig {
    fn default() -> Self {
        MysqlClusterConfig {
            seed: 1,
            instance: InstanceSpec::r3_8xlarge(),
            flavor: MysqlFlavor::V57,
            mirrored: false,
            binlog_replicas: 0,
            replica_apply_cost: SimDuration::from_micros(300),
            bootstrap_rows: 0,
            row_size: 96,
            ebs_iops: 30_000,
            group_commit_limit: None,
            checkpoint_every_records: None,
            ebs_outlier: None,
        }
    }
}

/// The built topology.
pub struct MysqlCluster {
    pub sim: Sim,
    pub client: NodeId,
    pub engine: NodeId,
    pub ebs: NodeId,
    pub standby: Option<NodeId>,
    pub replicas: Vec<NodeId>,
}

impl MysqlCluster {
    pub fn build(cfg: MysqlClusterConfig) -> MysqlCluster {
        Self::build_with(cfg, |_| {})
    }

    pub fn build_with(
        cfg: MysqlClusterConfig,
        tweak: impl FnOnce(&mut MysqlConfig),
    ) -> MysqlCluster {
        // Topology: client + 4 EBS volumes (2 local, 2 standby-site) +
        // engine + optional standby + replicas. Pre-size the kernel so the
        // event wheel and FIFO matrix never regrow mid-run.
        let total_nodes = 1 + 4 + 1 + cfg.mirrored as usize + cfg.binlog_replicas;
        let mut sim = Sim::with_hints(
            cfg.seed,
            aurora_sim::SimHints {
                nodes: total_nodes,
                expected_events: 1024.max(total_nodes * 96),
            },
        );
        let mut disk = DiskSpec::ebs_provisioned(cfg.ebs_iops);
        if let Some((ms, p)) = cfg.ebs_outlier {
            disk.read_latency = disk
                .read_latency
                .with_outlier(aurora_sim::Dist::const_millis(ms), p);
            disk.write_latency = disk
                .write_latency
                .with_outlier(aurora_sim::Dist::const_millis(ms), p);
        }
        let ebs_opts = NodeOpts { disk };

        let client = sim.add_node(
            "client",
            Zone(0),
            Box::new(Probe::new()),
            NodeOpts::default(),
        );

        // primary EBS pair (AZ1 == Zone 0, same zone as the instance)
        let mirror = sim.add_node("ebs-mirror", Zone(0), Box::new(EbsMirror), ebs_opts.clone());
        let ebs = sim.add_node(
            "ebs-primary",
            Zone(0),
            Box::new(EbsVolume::new(Some(mirror))),
            ebs_opts.clone(),
        );

        // standby chain in AZ2
        let standby = if cfg.mirrored {
            let smirror = sim.add_node(
                "standby-ebs-mirror",
                Zone(1),
                Box::new(EbsMirror),
                ebs_opts.clone(),
            );
            let sebs = sim.add_node(
                "standby-ebs",
                Zone(1),
                Box::new(EbsVolume::new(Some(smirror))),
                ebs_opts.clone(),
            );
            Some(sim.add_node(
                "standby",
                Zone(1),
                Box::new(StandbyInstance::new(sebs)),
                NodeOpts::default(),
            ))
        } else {
            None
        };

        // binlog replicas (cross-AZ readers)
        let mut replicas = Vec::new();
        for r in 0..cfg.binlog_replicas {
            let id = sim.add_node(
                format!("binlog-replica-{r}"),
                Zone(((r + 1) % 3) as u8),
                Box::new(BinlogReplica::new(cfg.replica_apply_cost)),
                NodeOpts::default(),
            );
            replicas.push(id);
        }

        let mut engine_cfg = MysqlConfig::tuned(ebs, cfg.flavor);
        engine_cfg.instance = cfg.instance.clone();
        engine_cfg.standby = standby;
        engine_cfg.binlog_replicas = replicas.clone();
        engine_cfg.bootstrap_rows = cfg.bootstrap_rows;
        engine_cfg.row_size = cfg.row_size;
        if let Some(g) = cfg.group_commit_limit {
            engine_cfg.group_commit_limit = g;
        }
        if let Some(cp) = cfg.checkpoint_every_records {
            engine_cfg.checkpoint_every_records = cp;
        }
        tweak(&mut engine_cfg);
        let engine = sim.add_node(
            "mysql",
            Zone(0),
            Box::new(MysqlEngine::new(engine_cfg)),
            NodeOpts::default(),
        );

        MysqlCluster {
            sim,
            client,
            engine,
            ebs,
            standby,
            replicas,
        }
    }

    /// Send a transaction from the client probe.
    pub fn submit(&mut self, conn: u64, spec: aurora_core::wire::TxnSpec) {
        let req = aurora_core::wire::ClientRequest {
            conn,
            txn: spec,
            issued_at: self.sim.now(),
        };
        let engine = self.engine;
        self.sim
            .tell(self.client, aurora_sim::Relay::new(engine, req));
    }

    /// All client responses received so far.
    pub fn responses(&self) -> Vec<aurora_core::wire::ClientResponse> {
        self.sim
            .actor::<Probe>(self.client)
            .received::<aurora_core::wire::ClientResponse>()
            .into_iter()
            .map(|(_, r)| r.clone())
            .collect()
    }
}
