//! The standby instance and the binlog replication replica.
//!
//! **Standby** (Figure 2, steps 3–5): receives the primary's block writes
//! and persists them through its *own* EBS volume + mirror before acking —
//! the cross-AZ synchronous leg of the mirrored configuration.
//!
//! **Binlog replica** (Table 4 / Figure 11): receives committed
//! transactions' binlog events and applies them **single-threaded**, the
//! classic MySQL replication architecture. Its apply capacity is finite;
//! once the primary commits faster than the replica applies, the queue —
//! and therefore the lag — grows without bound ("the replica lag in MySQL
//! grows from under a second to 300 seconds").

use std::collections::VecDeque;

use aurora_sim::hash::FxHashMap as HashMap;

use aurora_sim::{Actor, ActorEvent, Ctx, NodeId, SimDuration, Tag};

use crate::wire::*;

const TAG_APPLY: Tag = 1;

/// The standby instance: forwards shipped blocks to its EBS chain.
pub struct StandbyInstance {
    ebs: NodeId,
    /// req from primary -> (primary node, primary's req id)
    pending: HashMap<u64, (NodeId, u64)>,
    next_req: u64,
}

impl StandbyInstance {
    pub fn new(ebs: NodeId) -> Self {
        StandbyInstance {
            ebs,
            pending: HashMap::default(),
            next_req: 1,
        }
    }
}

impl Actor for StandbyInstance {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ActorEvent) {
        if let ActorEvent::Message { from, msg } = ev {
            let msg = match msg.downcast::<StandbyShip>() {
                Ok(ship) => {
                    let req_id = self.next_req;
                    self.next_req += 1;
                    self.pending.insert(req_id, (from, ship.req_id));
                    ctx.send(
                        self.ebs,
                        EbsAppend {
                            req_id,
                            bytes: ship.bytes,
                            records: Vec::new(),
                            binlog: false,
                        },
                    );
                    return;
                }
                Err(m) => m,
            };
            if let Ok(ack) = msg.downcast::<EbsAck>() {
                if let Some((primary, prim_req)) = self.pending.remove(&ack.req_id) {
                    ctx.send(primary, StandbyAck { req_id: prim_req });
                }
            }
        }
    }

    fn on_crash(&mut self) {
        self.pending.clear();
    }
}

/// Single-threaded binlog-apply replica.
pub struct BinlogReplica {
    /// Statement apply cost (single thread).
    apply_cost: SimDuration,
    queue: VecDeque<BinlogEvent>,
    busy: bool,
    /// Applied transaction count (inspection).
    pub applied: u64,
    /// Most recent measured lag (inspection).
    pub last_lag: SimDuration,
}

impl BinlogReplica {
    pub fn new(apply_cost: SimDuration) -> Self {
        BinlogReplica {
            apply_cost,
            queue: VecDeque::new(),
            busy: false,
            applied: 0,
            last_lag: SimDuration::ZERO,
        }
    }

    /// Current queue depth (inspection).
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        if self.busy || self.queue.is_empty() {
            return;
        }
        self.busy = true;
        ctx.set_timer(self.apply_cost, TAG_APPLY);
    }
}

impl Actor for BinlogReplica {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ActorEvent) {
        match ev {
            ActorEvent::Message { msg, .. } => {
                if let Ok(event) = msg.downcast::<BinlogEvent>() {
                    self.queue.push_back(event);
                    self.pump(ctx);
                }
            }
            ActorEvent::Timer { tag: TAG_APPLY } => {
                self.busy = false;
                if let Some(event) = self.queue.pop_front() {
                    self.applied += 1;
                    let lag = ctx.now().since(event.committed_at);
                    self.last_lag = lag;
                    ctx.record("mysql.replica_lag_ns", lag.nanos());
                    ctx.inc("mysql.replica_applied", 1);
                }
                self.pump(ctx);
            }
            _ => {}
        }
    }

    fn on_crash(&mut self) {
        self.queue.clear();
        self.busy = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_sim::{NodeOpts, Probe, Relay, Sim, SimTime, Zone};

    #[test]
    fn replica_lag_grows_when_overloaded() {
        let mut sim = Sim::new(5);
        let client = sim.add_node("c", Zone(0), Box::new(Probe::new()), NodeOpts::default());
        // 1ms per apply = 1000/s capacity
        let rep = sim.add_node(
            "rep",
            Zone(1),
            Box::new(BinlogReplica::new(SimDuration::from_millis(1))),
            NodeOpts::default(),
        );
        // feed 2000 events in one burst (2x capacity for a second)
        for i in 0..2_000u64 {
            sim.tell(
                client,
                Relay::new(
                    rep,
                    BinlogEvent {
                        seq: i,
                        bytes: 128,
                        committed_at: SimTime::ZERO,
                    },
                ),
            );
        }
        sim.run_for(SimDuration::from_millis(500));
        let r = sim.actor::<BinlogReplica>(rep);
        assert!(r.applied > 400 && r.applied < 600, "applied {}", r.applied);
        assert!(r.backlog() > 1_000, "backlog {}", r.backlog());
        // lag of the last applied event ≈ elapsed time (queueing dominated)
        assert!(r.last_lag > SimDuration::from_millis(400));
        sim.run_for(SimDuration::from_secs(2));
        let r = sim.actor::<BinlogReplica>(rep);
        assert_eq!(r.applied, 2_000);
        let lag = sim.metrics.histogram_total("mysql.replica_lag_ns");
        assert!(lag.max() > SimDuration::from_secs(1).nanos());
    }

    #[test]
    fn replica_keeps_up_under_capacity() {
        let mut sim = Sim::new(6);
        let client = sim.add_node("c", Zone(0), Box::new(Probe::new()), NodeOpts::default());
        let rep = sim.add_node(
            "rep",
            Zone(1),
            Box::new(BinlogReplica::new(SimDuration::from_micros(100))),
            NodeOpts::default(),
        );
        // 10 events spread over time, well under 10K/s capacity
        for i in 0..10u64 {
            sim.run_for(SimDuration::from_millis(10));
            let now = sim.now();
            sim.tell(
                client,
                Relay::new(
                    rep,
                    BinlogEvent {
                        seq: i,
                        bytes: 128,
                        committed_at: now,
                    },
                ),
            );
        }
        sim.run_for(SimDuration::from_millis(50));
        let r = sim.actor::<BinlogReplica>(rep);
        assert_eq!(r.applied, 10);
        let lag = sim.metrics.histogram_total("mysql.replica_lag_ns");
        assert!(
            lag.p95() < SimDuration::from_millis(5).nanos(),
            "p95 {}us",
            lag.p95() / 1000
        );
    }
}
