//! Wire protocol of the traditional stack: block IO to EBS volumes,
//! DRBD-style block shipping to the standby, and binlog events to the
//! replica. Message classes let Table 1 count the write IOs leaving the
//! database node, exactly as the paper does.

use aurora_log::{LogRecord, Lsn, Page, PageId, PAGE_SIZE};
use aurora_sim::{Msg, Payload, SimTime};

/// Append redo-log (or binlog) bytes to the volume.
#[derive(Debug, Clone)]
pub struct EbsAppend {
    pub req_id: u64,
    /// Serialized size being written.
    pub bytes: usize,
    /// The records themselves (kept so recovery can replay them).
    pub records: Vec<LogRecord>,
    /// True for binlog appends (archived, not replayed).
    pub binlog: bool,
}

impl Payload for EbsAppend {
    fn clone_boxed(&self) -> Option<Msg> {
        Some(Msg::new(self.clone()))
    }
    fn wire_size(&self) -> usize {
        32 + self.bytes
    }
    fn class(&self) -> &'static str {
        "ebs_log_write"
    }
}

/// Write a full data page (the flusher / eviction path). One message per
/// page: the paper's write amplification is real IOs, not bytes.
#[derive(Debug, Clone)]
pub struct EbsWritePage {
    pub req_id: u64,
    pub page_id: PageId,
    pub page: Page,
    /// True for the double-write-buffer copy that precedes the in-place
    /// write (torn-page protection).
    pub doublewrite: bool,
}

impl Payload for EbsWritePage {
    fn clone_boxed(&self) -> Option<Msg> {
        Some(Msg::new(self.clone()))
    }
    fn wire_size(&self) -> usize {
        32 + PAGE_SIZE
    }
    fn class(&self) -> &'static str {
        "ebs_page_write"
    }
}

/// Generic ack from the EBS volume (after its own mirror chain).
#[derive(Debug, Clone)]
pub struct EbsAck {
    pub req_id: u64,
}

impl Payload for EbsAck {
    fn clone_boxed(&self) -> Option<Msg> {
        Some(Msg::new(self.clone()))
    }
    fn wire_size(&self) -> usize {
        16
    }
    fn class(&self) -> &'static str {
        "ebs_ack"
    }
}

/// Read a page back (buffer-pool miss).
#[derive(Debug, Clone)]
pub struct EbsReadPage {
    pub req_id: u64,
    pub page_id: PageId,
}

impl Payload for EbsReadPage {
    fn clone_boxed(&self) -> Option<Msg> {
        Some(Msg::new(self.clone()))
    }
    fn wire_size(&self) -> usize {
        24
    }
    fn class(&self) -> &'static str {
        "ebs_page_read"
    }
}

/// Page contents.
#[derive(Debug, Clone)]
pub struct EbsReadResp {
    pub req_id: u64,
    pub page_id: PageId,
    pub page: Page,
}

impl Payload for EbsReadResp {
    fn clone_boxed(&self) -> Option<Msg> {
        Some(Msg::new(self.clone()))
    }
    fn wire_size(&self) -> usize {
        24 + PAGE_SIZE
    }
    fn class(&self) -> &'static str {
        "ebs_page_resp"
    }
}

/// EBS-internal: chain a block write to the in-AZ mirror.
#[derive(Debug, Clone)]
pub struct MirrorWrite {
    pub req_id: u64,
    pub bytes: usize,
}

impl Payload for MirrorWrite {
    fn clone_boxed(&self) -> Option<Msg> {
        Some(Msg::new(self.clone()))
    }
    fn wire_size(&self) -> usize {
        16 + self.bytes
    }
    fn class(&self) -> &'static str {
        "ebs_mirror"
    }
}

/// Mirror completion.
#[derive(Debug, Clone)]
pub struct MirrorAck {
    pub req_id: u64,
}

impl Payload for MirrorAck {
    fn clone_boxed(&self) -> Option<Msg> {
        Some(Msg::new(self.clone()))
    }
    fn wire_size(&self) -> usize {
        16
    }
    fn class(&self) -> &'static str {
        "ebs_mirror"
    }
}

/// DRBD-style synchronous shipment of primary block writes to the standby
/// instance (Figure 2, step 3).
#[derive(Debug, Clone)]
pub struct StandbyShip {
    pub req_id: u64,
    pub bytes: usize,
}

impl Payload for StandbyShip {
    fn clone_boxed(&self) -> Option<Msg> {
        Some(Msg::new(self.clone()))
    }
    fn wire_size(&self) -> usize {
        24 + self.bytes
    }
    fn class(&self) -> &'static str {
        "standby_ship"
    }
}

/// Standby confirms its own EBS chain persisted the blocks (steps 4–5).
#[derive(Debug, Clone)]
pub struct StandbyAck {
    pub req_id: u64,
}

impl Payload for StandbyAck {
    fn clone_boxed(&self) -> Option<Msg> {
        Some(Msg::new(self.clone()))
    }
    fn wire_size(&self) -> usize {
        16
    }
    fn class(&self) -> &'static str {
        "standby_ship"
    }
}

/// A committed transaction's binlog event, shipped asynchronously to the
/// replication replica (Table 4's lag path).
#[derive(Debug, Clone)]
pub struct BinlogEvent {
    /// Commit sequence number.
    pub seq: u64,
    /// Serialized statement size.
    pub bytes: usize,
    /// When the transaction committed on the primary.
    pub committed_at: SimTime,
}

impl Payload for BinlogEvent {
    fn clone_boxed(&self) -> Option<Msg> {
        Some(Msg::new(self.clone()))
    }
    fn wire_size(&self) -> usize {
        32 + self.bytes
    }
    fn class(&self) -> &'static str {
        "binlog"
    }
}

/// Recovery: fetch the redo records since the last checkpoint.
#[derive(Debug, Clone)]
pub struct ReplayReq {
    pub req_id: u64,
    pub from_lsn: Lsn,
}

impl Payload for ReplayReq {
    fn clone_boxed(&self) -> Option<Msg> {
        Some(Msg::new(self.clone()))
    }
    fn wire_size(&self) -> usize {
        24
    }
    fn class(&self) -> &'static str {
        "recovery"
    }
}

/// The redo tail to replay.
#[derive(Debug, Clone)]
pub struct ReplayResp {
    pub req_id: u64,
    pub records: Vec<LogRecord>,
}

impl Payload for ReplayResp {
    fn clone_boxed(&self) -> Option<Msg> {
        Some(Msg::new(self.clone()))
    }
    fn wire_size(&self) -> usize {
        16 + self.records.iter().map(|r| r.wire_size()).sum::<usize>()
    }
    fn class(&self) -> &'static str {
        "recovery"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_separate_log_and_page_traffic() {
        let a = EbsAppend {
            req_id: 1,
            bytes: 100,
            records: vec![],
            binlog: false,
        };
        assert_eq!(a.class(), "ebs_log_write");
        assert_eq!(a.wire_size(), 132);
        let p = EbsWritePage {
            req_id: 1,
            page_id: PageId(0),
            page: Page::new(),
            doublewrite: true,
        };
        assert_eq!(p.class(), "ebs_page_write");
        assert!(p.wire_size() > PAGE_SIZE);
    }
}
