//! Simulated EBS: a networked block volume with an in-AZ mirror.
//!
//! Figure 2, steps 1–2: "writes are issued to EBS, which in turn issues it
//! to an AZ-local mirror, and the acknowledgement is received when both
//! are done." The volume actor persists to its own (IOPS-capped) disk and
//! chains every write to an [`EbsMirror`]; the requester's ack waits for
//! both. Page contents and the redo/binlog byte streams are retained so
//! the baseline engine can read pages back and replay its log during
//! ARIES-style recovery.

use aurora_sim::hash::FxHashMap as HashMap;

use aurora_log::{apply_record, Lsn, Page, PageId};
use aurora_sim::{Actor, ActorEvent, Ctx, NodeId, Tag};

use crate::wire::*;

enum PendingKind {
    Append {
        from: NodeId,
    },
    Page {
        from: NodeId,
    },
    Read {
        from: NodeId,
        req_id: u64,
        page_id: PageId,
    },
}

struct Pending {
    kind: PendingKind,
    req_id: u64,
    /// Set once the local disk write completed.
    disk_done: bool,
    /// Set once the mirror acked (reads skip the mirror).
    mirror_done: bool,
}

/// The EBS volume actor.
pub struct EbsVolume {
    mirror: Option<NodeId>,
    // durable contents
    pages: HashMap<PageId, Page>,
    log: Vec<aurora_log::LogRecord>,
    binlog_bytes: u64,
    // volatile
    pending: HashMap<Tag, Pending>,
    next_op: Tag,
}

impl EbsVolume {
    pub fn new(mirror: Option<NodeId>) -> Self {
        EbsVolume {
            mirror,
            pages: HashMap::default(),
            log: Vec::new(),
            binlog_bytes: 0,
            pending: HashMap::default(),
            next_op: 1,
        }
    }

    /// Inspection: current image of a page.
    pub fn page(&self, id: PageId) -> Option<&Page> {
        self.pages.get(&id)
    }

    /// Inspection: redo records retained.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Apply the redo tail to the stored pages (used after a crash if the
    /// engine asks for replay — the volume is the authority on blocks).
    pub fn records_from(&self, from: Lsn) -> Vec<aurora_log::LogRecord> {
        self.log.iter().filter(|r| r.lsn > from).cloned().collect()
    }

    fn op(&mut self, p: Pending) -> Tag {
        let tag = self.next_op;
        self.next_op += 1;
        self.pending.insert(tag, p);
        tag
    }

    fn try_complete(&mut self, ctx: &mut Ctx<'_>, tag: Tag) {
        let Some(p) = self.pending.get(&tag) else {
            return;
        };
        let mirror_needed = self.mirror.is_some() && !matches!(p.kind, PendingKind::Read { .. });
        if !p.disk_done || (mirror_needed && !p.mirror_done) {
            return;
        }
        let p = self.pending.remove(&tag).unwrap();
        match p.kind {
            PendingKind::Append { from } | PendingKind::Page { from } => {
                ctx.send(from, EbsAck { req_id: p.req_id });
            }
            PendingKind::Read {
                from,
                req_id,
                page_id,
            } => {
                let page = self.pages.get(&page_id).cloned().unwrap_or_default();
                ctx.send(
                    from,
                    EbsReadResp {
                        req_id,
                        page_id,
                        page,
                    },
                );
            }
        }
    }
}

impl Actor for EbsVolume {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ActorEvent) {
        match ev {
            ActorEvent::Message { from, msg } => {
                let msg = match msg.downcast::<EbsAppend>() {
                    Ok(a) => {
                        if a.binlog {
                            self.binlog_bytes += a.bytes as u64;
                        } else {
                            self.log.extend(a.records);
                        }
                        let bytes = a.bytes;
                        let tag = self.op(Pending {
                            kind: PendingKind::Append { from },
                            req_id: a.req_id,
                            disk_done: false,
                            mirror_done: false,
                        });
                        ctx.disk_write(bytes.max(512), tag);
                        if let Some(m) = self.mirror {
                            ctx.send(m, MirrorWrite { req_id: tag, bytes });
                        }
                        return;
                    }
                    Err(m) => m,
                };
                let msg = match msg.downcast::<EbsWritePage>() {
                    Ok(w) => {
                        if !w.doublewrite {
                            self.pages.insert(w.page_id, w.page);
                        }
                        let tag = self.op(Pending {
                            kind: PendingKind::Page { from },
                            req_id: w.req_id,
                            disk_done: false,
                            mirror_done: false,
                        });
                        ctx.disk_write(aurora_log::PAGE_SIZE, tag);
                        if let Some(m) = self.mirror {
                            ctx.send(
                                m,
                                MirrorWrite {
                                    req_id: tag,
                                    bytes: aurora_log::PAGE_SIZE,
                                },
                            );
                        }
                        return;
                    }
                    Err(m) => m,
                };
                let msg = match msg.downcast::<EbsReadPage>() {
                    Ok(r) => {
                        let tag = self.op(Pending {
                            kind: PendingKind::Read {
                                from,
                                req_id: r.req_id,
                                page_id: r.page_id,
                            },
                            req_id: r.req_id,
                            disk_done: false,
                            mirror_done: true,
                        });
                        ctx.disk_read(aurora_log::PAGE_SIZE, tag);
                        return;
                    }
                    Err(m) => m,
                };
                let msg = match msg.downcast::<MirrorAck>() {
                    Ok(a) => {
                        if let Some(p) = self.pending.get_mut(&a.req_id) {
                            p.mirror_done = true;
                        }
                        self.try_complete(ctx, a.req_id);
                        return;
                    }
                    Err(m) => m,
                };
                let msg = match msg.downcast::<ReplayReq>() {
                    Ok(r) => {
                        let records = self.records_from(r.from_lsn);
                        ctx.send(
                            from,
                            ReplayResp {
                                req_id: r.req_id,
                                records,
                            },
                        );
                        return;
                    }
                    Err(m) => m,
                };
                // The engine may ask us to fold replayed records into pages
                // (recovery finishes by making the block state consistent).
                if let Ok(apply) = msg.downcast::<ApplyToPages>() {
                    for rec in &apply.records {
                        if let Some(page_id) = rec.page() {
                            let page = self.pages.entry(page_id).or_default();
                            let _ = apply_record(page, rec);
                        }
                    }
                }
            }
            ActorEvent::DiskDone { tag, .. } => {
                if let Some(p) = self.pending.get_mut(&tag) {
                    p.disk_done = true;
                }
                self.try_complete(ctx, tag);
            }
            _ => {}
        }
    }

    fn on_crash(&mut self) {
        // EBS itself is durable network storage; in-flight ops are lost
        self.pending.clear();
    }
}

/// Internal message: fold records into the volume's page images.
#[derive(Debug, Clone)]
pub struct ApplyToPages {
    pub records: Vec<aurora_log::LogRecord>,
}

impl aurora_sim::Payload for ApplyToPages {
    fn wire_size(&self) -> usize {
        16 + self.records.iter().map(|r| r.wire_size()).sum::<usize>()
    }
    fn class(&self) -> &'static str {
        "recovery"
    }
}

/// The in-AZ mirror of an EBS volume: persists and acks.
pub struct EbsMirror;

impl Actor for EbsMirror {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ActorEvent) {
        match ev {
            ActorEvent::Message { from, msg } => {
                if let Ok(w) = msg.downcast::<MirrorWrite>() {
                    // persist, then ack with the same req id; encode the
                    // requester in the high bits of the disk tag
                    let tag = (w.req_id << 20) | from as Tag;
                    ctx.disk_write(w.bytes.max(512), tag);
                }
            }
            ActorEvent::DiskDone { tag, .. } => {
                let from = (tag & 0xF_FFFF) as NodeId;
                let req_id = tag >> 20;
                ctx.send(from, MirrorAck { req_id });
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_log::{LogRecord, PgId, RecordBody, TxnId};
    use aurora_sim::{NodeOpts, Probe, Relay, Sim, SimDuration, Zone};

    fn setup() -> (Sim, NodeId, NodeId) {
        let mut sim = Sim::new(77);
        let client = sim.add_node("c", Zone(0), Box::new(Probe::new()), NodeOpts::default());
        let mirror = sim.add_node("m", Zone(0), Box::new(EbsMirror), NodeOpts::default());
        let ebs = sim.add_node(
            "ebs",
            Zone(0),
            Box::new(EbsVolume::new(Some(mirror))),
            NodeOpts::default(),
        );
        (sim, client, ebs)
    }

    #[test]
    fn append_acks_after_disk_and_mirror() {
        let (mut sim, client, ebs) = setup();
        sim.tell(
            client,
            Relay::new(
                ebs,
                EbsAppend {
                    req_id: 9,
                    bytes: 1_024,
                    records: vec![],
                    binlog: false,
                },
            ),
        );
        sim.run_for(SimDuration::from_millis(10));
        let probe = sim.actor::<Probe>(client);
        let acks = probe.received::<EbsAck>();
        assert_eq!(acks.len(), 1);
        assert_eq!(acks[0].1.req_id, 9);
    }

    #[test]
    fn page_write_read_roundtrip() {
        let (mut sim, client, ebs) = setup();
        let mut page = Page::new();
        page.write_range(0, b"block");
        sim.tell(
            client,
            Relay::new(
                ebs,
                EbsWritePage {
                    req_id: 1,
                    page_id: PageId(5),
                    page,
                    doublewrite: false,
                },
            ),
        );
        sim.run_for(SimDuration::from_millis(10));
        sim.tell(
            client,
            Relay::new(
                ebs,
                EbsReadPage {
                    req_id: 2,
                    page_id: PageId(5),
                },
            ),
        );
        sim.run_for(SimDuration::from_millis(10));
        let probe = sim.actor::<Probe>(client);
        let resp = probe.received::<EbsReadResp>();
        assert_eq!(resp.len(), 1);
        assert_eq!(&resp[0].1.page.bytes()[..5], b"block");
    }

    #[test]
    fn doublewrite_does_not_update_page_image() {
        let (mut sim, client, ebs) = setup();
        let mut page = Page::new();
        page.write_range(0, b"dw");
        sim.tell(
            client,
            Relay::new(
                ebs,
                EbsWritePage {
                    req_id: 1,
                    page_id: PageId(5),
                    page,
                    doublewrite: true,
                },
            ),
        );
        sim.run_for(SimDuration::from_millis(10));
        let vol = sim.actor::<EbsVolume>(ebs);
        assert!(vol.page(PageId(5)).is_none());
    }

    #[test]
    fn log_retained_for_replay() {
        let (mut sim, client, ebs) = setup();
        let rec = LogRecord {
            lsn: Lsn(5),
            prev_in_pg: Lsn(4),
            pg: PgId(0),
            txn: TxnId(1),
            is_cpl: true,
            body: RecordBody::TxnCommit,
        };
        sim.tell(
            client,
            Relay::new(
                ebs,
                EbsAppend {
                    req_id: 1,
                    bytes: 64,
                    records: vec![rec],
                    binlog: false,
                },
            ),
        );
        sim.run_for(SimDuration::from_millis(10));
        sim.tell(
            client,
            Relay::new(
                ebs,
                ReplayReq {
                    req_id: 2,
                    from_lsn: Lsn(0),
                },
            ),
        );
        sim.run_for(SimDuration::from_millis(10));
        let probe = sim.actor::<Probe>(client);
        let resp = probe.received::<ReplayResp>();
        assert_eq!(resp[0].1.records.len(), 1);
        // binlog appends are archived, not replayable
        assert_eq!(sim.actor::<EbsVolume>(ebs).log_len(), 1);
    }
}
