//! The traditional MySQL/InnoDB-style engine.
//!
//! Shares the B+-tree, buffer pool, and lock table with `aurora-core`, but
//! does IO the way Figure 2 describes:
//!
//! * commits require the redo log *and* binlog durably on EBS, and — in
//!   the mirrored configuration — shipped synchronously to the standby's
//!   EBS pair first (steps 1–5, sequential, additive latency),
//! * row locks are held until the commit chain completes (no early
//!   release: this is what makes hot rows so expensive, Table 5),
//! * dirty pages are flushed by a background flusher, on eviction (a
//!   foreground stall), and wholesale at checkpoints (which gate new
//!   writes — "checkpointing [has] positive correlation with the
//!   foreground load"),
//! * crash recovery replays the redo log from the last checkpoint before
//!   the engine opens, then rolls back in-flight transactions.
//!
//! Group-commit quality is the `group_commit_limit` knob: MySQL 5.6's
//! binlog serialization (the `prepare_commit_mutex` era) batches poorly;
//! 5.7 batches better. Both are far from Aurora's fully asynchronous
//! pipeline.

use std::collections::VecDeque;

use aurora_sim::hash::FxHashMap as HashMap;

use aurora_core::btree::{BTree, BTreeError, PageEditor, PageMiss, PageProvider, TreeMeta};
use aurora_core::buffer::BufferPool;
use aurora_core::engine::InstanceSpec;
use aurora_core::locks::{LockOutcome, LockTable};
use aurora_core::wire::{ClientRequest, ClientResponse, Op, OpResult, TxnResult, TxnSpec};
use aurora_log::{LogRecord, Lsn, Page, PageId, Patch, PgId, RecordBody, TxnId};
use aurora_sim::{Actor, ActorEvent, Ctx, NodeId, SimDuration, SimTime, Tag};
use bytes::Bytes;

use crate::wire::*;

const TAG_FLUSHER: Tag = 1;
const TAG_SWEEP: Tag = 2;
const TAG_REPLAY_DONE: Tag = 3;
const TAG_BOOTSTRAP: Tag = 4;
const TAG_MUTEX_BASE: Tag = 1 << 46;
const TAG_CPU_BASE: Tag = 1 << 48;

/// Which MySQL the baseline imitates (§6.1 compares 5.6 and 5.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MysqlFlavor {
    V56,
    V57,
}

/// Baseline engine configuration.
#[derive(Debug, Clone)]
pub struct MysqlConfig {
    pub instance: InstanceSpec,
    pub flavor: MysqlFlavor,
    pub row_size: usize,
    pub bootstrap_rows: u64,
    pub cpu_per_op: SimDuration,
    pub cpu_per_read: SimDuration,
    pub cpu_per_commit: SimDuration,
    /// Thread-per-connection scheduling overhead: effective CPU cost is
    /// multiplied by `1 + (active_conns / thrash_conns)^2` (§7.2 — MySQL
    /// cannot "handle many concurrent connections"; Aurora can).
    pub thrash_conns: u64,
    /// Primary EBS volume node.
    pub ebs: NodeId,
    /// Standby instance node (mirrored configuration; None = single-AZ).
    pub standby: Option<NodeId>,
    /// Binlog replication targets.
    pub binlog_replicas: Vec<NodeId>,
    /// Max transactions folded into one commit-chain round (group commit).
    pub group_commit_limit: usize,
    /// Serialized time each write statement spends holding the redo/binlog
    /// mutex (the InnoDB `log_sys`/`prepare_commit_mutex` path): a single
    /// resource regardless of vCPUs, and the main reason MySQL write
    /// throughput does not scale with instance size (Figure 7's flat
    /// MySQL lines).
    pub serial_log_cost: SimDuration,
    /// Redo records between checkpoints.
    pub checkpoint_every_records: u64,
    /// Background flusher cadence and batch size.
    pub flusher_interval: SimDuration,
    pub flusher_batch: usize,
    pub lock_wait_timeout: SimDuration,
    /// Recovery replay speed (records/second).
    pub replay_rate: u64,
}

impl MysqlConfig {
    /// Flavor-tuned defaults: 5.6 has the `prepare_commit_mutex`-era group
    /// commit (poor batching) and slightly higher per-op cost; 5.7 batches
    /// commits well. Mirrored configurations should additionally set
    /// `standby` (which serializes the chain across AZs).
    pub fn tuned(ebs: NodeId, flavor: MysqlFlavor) -> Self {
        let mut cfg = Self::new(ebs);
        cfg.flavor = flavor;
        match flavor {
            MysqlFlavor::V56 => {
                cfg.group_commit_limit = 24;
                cfg.serial_log_cost = SimDuration::from_micros(120);
                cfg.cpu_per_op = SimDuration::from_micros(70);
            }
            MysqlFlavor::V57 => {
                cfg.group_commit_limit = 64;
                cfg.serial_log_cost = SimDuration::from_micros(30);
                cfg.cpu_per_op = SimDuration::from_micros(60);
            }
        }
        cfg
    }

    pub fn new(ebs: NodeId) -> Self {
        MysqlConfig {
            instance: InstanceSpec::r3_8xlarge(),
            flavor: MysqlFlavor::V57,
            row_size: 96,
            bootstrap_rows: 0,
            cpu_per_op: SimDuration::from_micros(60),
            cpu_per_read: SimDuration::from_micros(40),
            cpu_per_commit: SimDuration::from_micros(30),
            thrash_conns: 2_500,
            ebs,
            standby: None,
            binlog_replicas: Vec::new(),
            group_commit_limit: 32,
            serial_log_cost: SimDuration::from_micros(50),
            checkpoint_every_records: 400_000,
            flusher_interval: SimDuration::from_millis(2),
            flusher_batch: 64,
            lock_wait_timeout: SimDuration::from_secs(2),
            replay_rate: 2_000_000,
        }
    }
}

#[derive(Debug)]
enum Phase {
    Cpu,
    PageWait,
    LockWait { key: u64, since: SimTime },
    EvictWait,
}

struct RunningTxn {
    conn: u64,
    client: NodeId,
    issued_at: SimTime,
    spec: TxnSpec,
    pc: usize,
    results: Vec<OpResult>,
    txn: TxnId,
    phase: Phase,
    op_started: SimTime,
    undo_ops: Vec<Op>,
    wrote: bool,
    rollback: bool,
}

struct CommitWaiter {
    conn: u64,
    client: NodeId,
    issued_at: SimTime,
    results: Vec<OpResult>,
    txn: TxnId,
    #[allow(dead_code)]
    commit_lsn: Lsn,
}

/// One in-flight commit-chain round.
struct FlushRound {
    /// 0 = waiting log ack, 1 = waiting binlog ack, 2 = waiting standby.
    stage: u8,
    commits: Vec<CommitWaiter>,
    bytes: usize,
}

struct PendingRead {
    page: PageId,
    conns: Vec<u64>,
}

enum PendingEvict {
    /// waiting for (doublewrite, page) acks; then retry the conns
    Flush {
        remaining: u8,
        #[allow(dead_code)]
        victim: PageId,
        conns: Vec<u64>,
        checkpoint: bool,
    },
}

pub struct MysqlEngine {
    cfg: MysqlConfig,
    tree: BTree,
    // ---- survives crash (the checkpoint record lives in the log header)
    durable_checkpoint: Lsn,
    // ---- volatile
    status: Status,
    pool: BufferPool,
    next_lsn: u64,
    log_buffer: Vec<LogRecord>,
    log_buffer_bytes: usize,
    commit_queue: VecDeque<CommitWaiter>,
    flush: Option<FlushRound>,
    locks: LockTable,
    running: HashMap<u64, RunningTxn>,
    next_txn: u64,
    next_req: u64,
    next_synthetic: u64,
    reads: HashMap<u64, PendingRead>,
    page_waits: HashMap<PageId, u64>,
    evictions: HashMap<u64, PendingEvict>,
    vcpu_free: Vec<SimTime>,
    redo_since_checkpoint: u64,
    checkpoint_active: bool,
    checkpoint_queue: Vec<PageId>,
    stalled_writes: VecDeque<u64>,
    flusher_outstanding: u64,
    binlog_seq: u64,
    replay_started: SimTime,
    pending_rollbacks: Vec<(TxnId, Vec<Op>)>,
    bootstrap_next: u64,
    /// The single log mutex: free-at timestamp.
    log_mutex_free: SimTime,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Bootstrapping,
    Ready,
    Recovering,
}

// ---- provider over the traditional buffer pool ----

struct MysqlProvider<'a> {
    pool: &'a mut BufferPool,
    bodies: Vec<RecordBody>,
}

impl<'a> PageProvider for MysqlProvider<'a> {
    fn read(&mut self, id: PageId) -> Result<&Page, PageMiss> {
        if self.pool.get(id).is_some() {
            Ok(self.pool.peek(id).unwrap())
        } else {
            Err(PageMiss(id))
        }
    }

    fn write(
        &mut self,
        id: PageId,
        f: &mut dyn FnMut(&mut PageEditor<'_>),
    ) -> Result<(), PageMiss> {
        let Some(page) = self.pool.get_mut(id) else {
            return Err(PageMiss(id));
        };
        let mut patches = Vec::new();
        {
            let mut editor = PageEditor::new(page, &mut patches);
            f(&mut editor);
        }
        if !patches.is_empty() {
            self.bodies.push(RecordBody::PageWrite {
                page: id,
                patches: patches
                    .into_iter()
                    .map(|(offset, before, after)| Patch {
                        offset,
                        before: Bytes::from(before),
                        after: Bytes::from(after),
                    })
                    .collect(),
            });
        }
        Ok(())
    }

    fn allocate(&mut self) -> Result<PageId, PageMiss> {
        let off = aurora_core::btree::OFF_META_NEXT_FREE;
        let next = {
            let meta = self.pool.get(PageId(0)).ok_or(PageMiss(PageId(0)))?;
            let stored = u64::from_le_bytes(meta.bytes()[off..off + 8].try_into().unwrap());
            stored.max(1)
        };
        let id = PageId(next);
        self.write(PageId(0), &mut |e| {
            e.set_u64(off, next + 1);
        })?;
        self.bodies.push(RecordBody::PageFormat {
            page: id,
            init: Bytes::new(),
        });
        self.pool.insert_unchecked(id, Page::new());
        Ok(id)
    }
}

enum ExecStall {
    Miss(PageId),
    Abort(String),
}

fn stall_from(e: BTreeError) -> ExecStall {
    match e {
        BTreeError::Miss(m) => ExecStall::Miss(m.0),
        other => ExecStall::Abort(other.to_string()),
    }
}

fn fit_row(v: &[u8], row_size: usize) -> Vec<u8> {
    let mut row = vec![0u8; row_size];
    let n = v.len().min(row_size);
    row[..n].copy_from_slice(&v[..n]);
    row
}

fn encode_undo(op: &Op) -> Bytes {
    // same layout as aurora-core's undo encoding, txn id prepended by caller
    let mut out = Vec::with_capacity(32);
    match op {
        Op::Insert(k, v) => {
            out.push(0);
            out.extend_from_slice(&k.to_le_bytes());
            out.extend_from_slice(v);
        }
        Op::Update(k, v) => {
            out.push(1);
            out.extend_from_slice(&k.to_le_bytes());
            out.extend_from_slice(v);
        }
        Op::Delete(k) => {
            out.push(2);
            out.extend_from_slice(&k.to_le_bytes());
        }
        _ => unreachable!(),
    }
    Bytes::from(out)
}

fn decode_undo(data: &[u8]) -> Option<Op> {
    if data.len() < 9 {
        return None;
    }
    let tag = data[0];
    let k = u64::from_le_bytes(data[1..9].try_into().ok()?);
    Some(match tag {
        0 => Op::Insert(k, data[9..].to_vec()),
        1 => Op::Update(k, data[9..].to_vec()),
        2 => Op::Delete(k),
        _ => return None,
    })
}

impl MysqlEngine {
    pub fn new(cfg: MysqlConfig) -> Self {
        let tree = BTree::new(TreeMeta::for_row_size(cfg.row_size, PageId(0)));
        let pool = BufferPool::new(cfg.instance.buffer_pages);
        let vcpus = cfg.instance.vcpus as usize;
        MysqlEngine {
            tree,
            pool,
            durable_checkpoint: Lsn::ZERO,
            status: Status::Bootstrapping,
            next_lsn: 1,
            log_buffer: Vec::new(),
            log_buffer_bytes: 0,
            commit_queue: VecDeque::new(),
            flush: None,
            locks: LockTable::new(),
            running: HashMap::default(),
            next_txn: 1,
            next_req: 1,
            next_synthetic: 1 << 40,
            reads: HashMap::default(),
            page_waits: HashMap::default(),
            evictions: HashMap::default(),
            vcpu_free: vec![SimTime::ZERO; vcpus],
            redo_since_checkpoint: 0,
            checkpoint_active: false,
            checkpoint_queue: Vec::new(),
            stalled_writes: VecDeque::new(),
            flusher_outstanding: 0,
            binlog_seq: 0,
            replay_started: SimTime::ZERO,
            pending_rollbacks: Vec::new(),
            bootstrap_next: 0,
            log_mutex_free: SimTime::ZERO,
            cfg,
        }
    }

    /// Inspection.
    pub fn is_ready(&self) -> bool {
        self.status == Status::Ready
    }

    fn alloc_lsns(&mut self, bodies: Vec<RecordBody>, txn: TxnId) -> (Lsn, Lsn) {
        let first = Lsn(self.next_lsn);
        for body in bodies {
            let lsn = Lsn(self.next_lsn);
            self.next_lsn += 1;
            let rec = LogRecord {
                lsn,
                prev_in_pg: Lsn(lsn.0 - 1),
                pg: PgId(0),
                txn,
                is_cpl: true,
                body,
            };
            if let Some(page) = rec.page() {
                self.pool.set_lsn(page, rec.lsn);
            }
            self.log_buffer_bytes += rec.wire_size();
            self.log_buffer.push(rec);
            self.redo_since_checkpoint += 1;
        }
        (first, Lsn(self.next_lsn - 1))
    }

    // ---- CPU ----

    fn schedule_cpu(&mut self, ctx: &mut Ctx<'_>, conn: u64, cost: SimDuration) {
        let now = ctx.now();
        let (idx, free) = self
            .vcpu_free
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .map(|(i, t)| (i, *t))
            .unwrap();
        let start = if free > now { free } else { now };
        let end = start + cost;
        self.vcpu_free[idx] = end;
        ctx.set_timer(end - now, TAG_CPU_BASE + conn);
    }

    // ---- the commit chain (Figure 2) ----

    fn maybe_start_flush(&mut self, ctx: &mut Ctx<'_>) {
        if self.flush.is_some() || self.commit_queue.is_empty() {
            return;
        }
        let take = self
            .cfg
            .group_commit_limit
            .max(1)
            .min(self.commit_queue.len());
        let commits: Vec<CommitWaiter> = self.commit_queue.drain(..take).collect();
        // everything staged so far rides along (log writes are sequential)
        let records = std::mem::take(&mut self.log_buffer);
        let bytes = std::mem::take(&mut self.log_buffer_bytes).max(512);
        let req_id = self.next_req;
        self.next_req += 1;
        ctx.inc("mysql.log_flushes", 1);
        ctx.send(
            self.cfg.ebs,
            EbsAppend {
                req_id,
                bytes,
                records,
                binlog: false,
            },
        );
        self.flush = Some(FlushRound {
            stage: 0,
            commits,
            bytes,
        });
    }

    fn on_flush_ack(&mut self, ctx: &mut Ctx<'_>) {
        let Some(round) = self.flush.as_mut() else {
            return;
        };
        match round.stage {
            0 => {
                // stage 2: binlog fsync (its own sequential write — the
                // "statement log archived to S3" of Figure 2)
                round.stage = 1;
                let req_id = self.next_req;
                self.next_req += 1;
                let bytes = (round.commits.len() * 128).max(512);
                ctx.send(
                    self.cfg.ebs,
                    EbsAppend {
                        req_id,
                        bytes,
                        records: Vec::new(),
                        binlog: true,
                    },
                );
            }
            1 => {
                if let Some(standby) = self.cfg.standby {
                    // stage 3: synchronous block shipping to the standby
                    round.stage = 2;
                    let req_id = self.next_req;
                    self.next_req += 1;
                    let bytes = round.bytes;
                    ctx.send(standby, StandbyShip { req_id, bytes });
                } else {
                    self.complete_flush(ctx);
                }
            }
            _ => self.complete_flush(ctx),
        }
    }

    fn complete_flush(&mut self, ctx: &mut Ctx<'_>) {
        let round = self.flush.take().expect("flush round");
        let now = ctx.now();
        for cw in round.commits {
            // traditional: locks are held until the commit is durable
            self.locks.release_all(cw.txn);
            ctx.inc("mysql.commits", 1);
            ctx.inc("mysql.write_txns", 1);
            ctx.record("mysql.txn_ns", now.since(cw.issued_at).nanos());
            ctx.record("mysql.commit_ns", now.since(cw.issued_at).nanos());
            ctx.send(
                cw.client,
                ClientResponse {
                    conn: cw.conn,
                    result: TxnResult::Committed(cw.results),
                    issued_at: cw.issued_at,
                },
            );
            // asynchronous binlog shipping to replication replicas
            self.binlog_seq += 1;
            for r in self.cfg.binlog_replicas.clone() {
                ctx.send(
                    r,
                    BinlogEvent {
                        seq: self.binlog_seq,
                        bytes: 128,
                        committed_at: now,
                    },
                );
            }
        }
        self.resume_lock_waiters(ctx);
        self.maybe_start_flush(ctx);
        self.maybe_checkpoint(ctx);
    }

    // ---- checkpointing ----

    fn maybe_checkpoint(&mut self, ctx: &mut Ctx<'_>) {
        if self.checkpoint_active || self.redo_since_checkpoint < self.cfg.checkpoint_every_records
        {
            return;
        }
        self.checkpoint_active = true;
        self.checkpoint_queue = self.pool.dirty_pages();
        ctx.inc("mysql.checkpoints", 1);
        self.drive_checkpoint(ctx);
    }

    fn drive_checkpoint(&mut self, ctx: &mut Ctx<'_>) {
        if !self.checkpoint_active {
            return;
        }
        // issue up to flusher_batch page flushes per call
        let mut issued = 0;
        while issued < self.cfg.flusher_batch {
            let Some(page_id) = self.checkpoint_queue.pop() else {
                break;
            };
            if self.flush_page(ctx, page_id, true) {
                issued += 1;
            }
        }
        if self.checkpoint_queue.is_empty() && self.flusher_outstanding == 0 {
            // checkpoint complete: durable position advances
            self.checkpoint_active = false;
            self.durable_checkpoint = Lsn(self.next_lsn - 1);
            self.redo_since_checkpoint = 0;
            // release stalled writers
            let stalled: Vec<u64> = self.stalled_writes.drain(..).collect();
            for conn in stalled {
                if self.running.contains_key(&conn) {
                    self.exec_current_op(ctx, conn);
                }
            }
        }
    }

    /// Write a dirty page out: double-write first, then in place (2 IOs).
    /// Returns false if the page is no longer dirty/resident.
    fn flush_page(&mut self, ctx: &mut Ctx<'_>, page_id: PageId, checkpoint: bool) -> bool {
        let Some(page) = self.pool.peek(page_id) else {
            return false;
        };
        let page = page.clone();
        let req_id = self.next_req;
        self.next_req += 1;
        self.flusher_outstanding += 2;
        self.evictions.insert(
            req_id,
            PendingEvict::Flush {
                remaining: 2,
                victim: page_id,
                conns: Vec::new(),
                checkpoint,
            },
        );
        ctx.inc("mysql.page_flushes", 1);
        ctx.send(
            self.cfg.ebs,
            EbsWritePage {
                req_id,
                page_id,
                page: page.clone(),
                doublewrite: true,
            },
        );
        ctx.send(
            self.cfg.ebs,
            EbsWritePage {
                req_id,
                page_id,
                page,
                doublewrite: false,
            },
        );
        self.pool.mark_clean(page_id);
        true
    }

    // ---- transaction execution ----

    fn begin_request(&mut self, ctx: &mut Ctx<'_>, client: NodeId, req: ClientRequest) {
        if self.status == Status::Recovering {
            ctx.send(
                client,
                ClientResponse {
                    conn: req.conn,
                    result: TxnResult::Aborted("recovering".into()),
                    issued_at: req.issued_at,
                },
            );
            return;
        }
        let txn = TxnId(self.next_txn);
        self.next_txn += 1;
        let conn = req.conn;
        self.running.insert(
            conn,
            RunningTxn {
                conn,
                client,
                issued_at: req.issued_at,
                spec: req.txn,
                pc: 0,
                results: Vec::new(),
                txn,
                phase: Phase::Cpu,
                op_started: ctx.now(),
                undo_ops: Vec::new(),
                wrote: false,
                rollback: false,
            },
        );
        self.start_op(ctx, conn);
    }

    fn start_op(&mut self, ctx: &mut Ctx<'_>, conn: u64) {
        let Some(rt) = self.running.get_mut(&conn) else {
            return;
        };
        rt.op_started = ctx.now();
        rt.phase = Phase::Cpu;
        let base = if rt.pc >= rt.spec.ops.len() {
            self.cfg.cpu_per_commit
        } else if rt.spec.ops[rt.pc].is_read() {
            self.cfg.cpu_per_read
        } else {
            self.cfg.cpu_per_op
        };
        // thread-per-connection scheduling overhead at high concurrency
        let active = self.running.len() as f64;
        let thrash = 1.0 + (active / self.cfg.thrash_conns.max(1) as f64).powi(2);
        let cost = base.mul_f64(thrash);
        self.schedule_cpu(ctx, conn, cost);
    }

    fn exec_current_op(&mut self, ctx: &mut Ctx<'_>, conn: u64) {
        let Some(rt) = self.running.get(&conn) else {
            return;
        };
        if rt.pc >= rt.spec.ops.len() {
            self.finish_txn(ctx, conn);
            return;
        }
        let op = rt.spec.ops[rt.pc].clone();
        let txn = rt.txn;
        let is_rollback = rt.rollback;

        // checkpoint gate: new writes stall while a checkpoint drains
        // ("reduce … interference with foreground transactions" is exactly
        // what this engine cannot do)
        if self.checkpoint_active && op.write_key().is_some() && !is_rollback {
            ctx.inc("mysql.checkpoint_stalls", 1);
            self.stalled_writes.push_back(conn);
            return;
        }

        if let Some(key) = op.write_key() {
            match self.locks.acquire(key, txn) {
                LockOutcome::Granted => {}
                LockOutcome::Queued => {
                    ctx.inc("mysql.lock_waits", 1);
                    let now = ctx.now();
                    if let Some(rt) = self.running.get_mut(&conn) {
                        rt.phase = Phase::LockWait { key, since: now };
                    }
                    return;
                }
            }
        }

        match self.try_exec_op(conn, &op) {
            Ok(result) => {
                let kind = match &op {
                    Op::Get(_) => "mysql.select_ns",
                    Op::Scan(_, _) => "mysql.scan_ns",
                    Op::Insert(_, _) => "mysql.insert_ns",
                    Op::Update(_, _) | Op::Upsert(_, _) => "mysql.update_ns",
                    Op::Delete(_) => "mysql.delete_ns",
                };
                let is_write = op.write_key().is_some();
                let rt = self.running.get_mut(&conn).unwrap();
                let elapsed = ctx.now().since(rt.op_started).nanos();
                rt.results.push(result);
                rt.pc += 1;
                ctx.record(kind, elapsed);
                if is_write && self.cfg.serial_log_cost > SimDuration::ZERO {
                    // copy the record into the redo/binlog buffers under
                    // the single log mutex — serialized across all vCPUs
                    let now = ctx.now();
                    let start = if self.log_mutex_free > now {
                        self.log_mutex_free
                    } else {
                        now
                    };
                    let end = start + self.cfg.serial_log_cost;
                    self.log_mutex_free = end;
                    ctx.set_timer(end - now, TAG_MUTEX_BASE + conn);
                    return;
                }
                self.start_op(ctx, conn);
            }
            Err(ExecStall::Miss(page)) => {
                if let Some(rt) = self.running.get_mut(&conn) {
                    rt.phase = Phase::PageWait;
                }
                self.request_page(ctx, page, conn);
            }
            Err(ExecStall::Abort(reason)) => {
                self.abort_txn(ctx, conn, reason);
            }
        }
    }

    fn try_exec_op(&mut self, conn: u64, op: &Op) -> Result<OpResult, ExecStall> {
        let txn = self.running.get(&conn).expect("running").txn;
        let tree = self.tree;
        let row_size = self.cfg.row_size;
        match op {
            Op::Get(k) => {
                let mut p = MysqlProvider {
                    pool: &mut self.pool,
                    bodies: Vec::new(),
                };
                tree.get(&mut p, *k).map(OpResult::Row).map_err(stall_from)
            }
            Op::Scan(k, n) => {
                let mut p = MysqlProvider {
                    pool: &mut self.pool,
                    bodies: Vec::new(),
                };
                tree.scan(&mut p, *k, *n)
                    .map(OpResult::Rows)
                    .map_err(stall_from)
            }
            write => {
                let key = write.write_key().unwrap();
                // read old value
                let old = {
                    let mut p = MysqlProvider {
                        pool: &mut self.pool,
                        bodies: Vec::new(),
                    };
                    tree.get(&mut p, key).map_err(stall_from)?
                };
                let (inverse, act): (Op, u8) = match (write, &old) {
                    (Op::Insert(_, _), None) | (Op::Upsert(_, _), None) => (Op::Delete(key), 0),
                    (Op::Insert(_, _), Some(_)) => {
                        return Err(ExecStall::Abort(format!("duplicate key {key}")))
                    }
                    (Op::Update(_, _), Some(o)) | (Op::Upsert(_, _), Some(o)) => {
                        (Op::Update(key, o.clone()), 1)
                    }
                    (Op::Update(_, _), None) => {
                        return Err(ExecStall::Abort(format!("key {key} not found")))
                    }
                    (Op::Delete(_), Some(o)) => (Op::Insert(key, o.clone()), 2),
                    (Op::Delete(_), None) => {
                        return Err(ExecStall::Abort(format!("key {key} not found")))
                    }
                    _ => unreachable!(),
                };
                let mut bodies = {
                    let mut p = MysqlProvider {
                        pool: &mut self.pool,
                        bodies: Vec::new(),
                    };
                    let r = match (write, act) {
                        (Op::Insert(_, v), 0) | (Op::Upsert(_, v), 0) => {
                            tree.insert(&mut p, key, &fit_row(v, row_size))
                        }
                        (Op::Update(_, v), 1) | (Op::Upsert(_, v), 1) => {
                            tree.update(&mut p, key, &fit_row(v, row_size))
                        }
                        (Op::Delete(_), 2) => tree.delete(&mut p, key),
                        _ => unreachable!(),
                    };
                    r.map_err(stall_from)?;
                    p.bodies
                };
                // log the logical undo alongside (as InnoDB redo-logs undo)
                let mut undo_payload = Vec::with_capacity(40);
                undo_payload.extend_from_slice(&txn.0.to_le_bytes());
                undo_payload.extend_from_slice(&encode_undo(&inverse));
                bodies.push(RecordBody::Undo {
                    data: Bytes::from(undo_payload),
                });
                let rt = self.running.get_mut(&conn).unwrap();
                let first_write = !rt.wrote;
                let mut all = Vec::with_capacity(bodies.len() + 1);
                if first_write && !rt.rollback {
                    all.push(RecordBody::TxnBegin);
                }
                all.extend(bodies);
                rt.wrote = true;
                rt.undo_ops.push(inverse);
                self.alloc_lsns(all, txn);
                Ok(OpResult::Done)
            }
        }
    }

    fn finish_txn(&mut self, ctx: &mut Ctx<'_>, conn: u64) {
        let rt = self.running.remove(&conn).expect("running");
        if rt.rollback {
            self.alloc_lsns(vec![RecordBody::TxnAbort], rt.txn);
            self.locks.release_all(rt.txn);
            self.resume_lock_waiters(ctx);
            return;
        }
        if !rt.wrote {
            ctx.inc("mysql.commits", 1);
            ctx.inc("mysql.read_txns", 1);
            ctx.record("mysql.txn_ns", ctx.now().since(rt.issued_at).nanos());
            ctx.send(
                rt.client,
                ClientResponse {
                    conn: rt.conn,
                    result: TxnResult::Committed(rt.results),
                    issued_at: rt.issued_at,
                },
            );
            return;
        }
        let (_, commit_lsn) = self.alloc_lsns(vec![RecordBody::TxnCommit], rt.txn);
        self.commit_queue.push_back(CommitWaiter {
            conn: rt.conn,
            client: rt.client,
            issued_at: rt.issued_at,
            results: rt.results,
            txn: rt.txn,
            commit_lsn,
        });
        self.maybe_start_flush(ctx);
    }

    fn abort_txn(&mut self, ctx: &mut Ctx<'_>, conn: u64, reason: String) {
        let Some(rt) = self.running.remove(&conn) else {
            return;
        };
        if rt.rollback {
            ctx.inc("mysql.rollback_errors", 1);
            self.locks.release_all(rt.txn);
            self.resume_lock_waiters(ctx);
            return;
        }
        ctx.inc("mysql.aborts", 1);
        ctx.send(
            rt.client,
            ClientResponse {
                conn: rt.conn,
                result: TxnResult::Aborted(reason),
                issued_at: rt.issued_at,
            },
        );
        if !rt.wrote {
            self.locks.release_all(rt.txn);
            self.resume_lock_waiters(ctx);
            return;
        }
        let inverse_ops: Vec<Op> = rt.undo_ops.iter().rev().cloned().collect();
        self.spawn_rollback(ctx, rt.txn, inverse_ops);
    }

    fn spawn_rollback(&mut self, ctx: &mut Ctx<'_>, txn: TxnId, inverse_ops: Vec<Op>) {
        let conn = self.next_synthetic;
        self.next_synthetic += 1;
        self.running.insert(
            conn,
            RunningTxn {
                conn,
                client: aurora_sim::sim::EXTERNAL,
                issued_at: ctx.now(),
                spec: TxnSpec { ops: inverse_ops },
                pc: 0,
                results: Vec::new(),
                txn,
                phase: Phase::Cpu,
                op_started: ctx.now(),
                undo_ops: Vec::new(),
                wrote: true,
                rollback: true,
            },
        );
        self.start_op(ctx, conn);
    }

    fn resume_lock_waiters(&mut self, ctx: &mut Ctx<'_>) {
        let resumable: Vec<u64> = self
            .running
            .iter()
            .filter(|(_, rt)| {
                matches!(rt.phase, Phase::LockWait { key, .. }
                    if self.locks.owner(key) == Some(rt.txn))
            })
            .map(|(c, _)| *c)
            .collect();
        for conn in resumable {
            self.exec_current_op(ctx, conn);
        }
    }

    // ---- reads / eviction ----

    fn request_page(&mut self, ctx: &mut Ctx<'_>, page: PageId, conn: u64) {
        if let Some(req_id) = self.page_waits.get(&page) {
            if let Some(pr) = self.reads.get_mut(req_id) {
                if !pr.conns.contains(&conn) {
                    pr.conns.push(conn);
                }
                return;
            }
        }
        let req_id = self.next_req;
        self.next_req += 1;
        self.page_waits.insert(page, req_id);
        self.reads.insert(
            req_id,
            PendingRead {
                page,
                conns: vec![conn],
            },
        );
        ctx.inc("mysql.page_fetches", 1);
        ctx.send(
            self.cfg.ebs,
            EbsReadPage {
                req_id,
                page_id: page,
            },
        );
    }

    fn on_read_resp(&mut self, ctx: &mut Ctx<'_>, resp: EbsReadResp) {
        let Some(pr) = self.reads.remove(&resp.req_id) else {
            return;
        };
        self.page_waits.remove(&pr.page);
        // room must be made: a dirty LRU victim forces a foreground flush
        // before the fetched page can come in ("the extra penalty of
        // evicting and flushing a dirty cache page")
        while self.pool.len() >= self.pool.capacity() {
            let Some((victim, dirty)) = self.pool.lru_victim() else {
                break;
            };
            if dirty {
                ctx.inc("mysql.evict_flushes", 1);
                let req_id = self.next_req - 1; // reuse: flush_page assigns its own
                let _ = req_id;
                // flush synchronously from the txn's perspective: park the
                // conns until the page write completes
                let page = self.pool.peek(victim).unwrap().clone();
                let req_id = self.next_req;
                self.next_req += 1;
                self.flusher_outstanding += 2;
                self.evictions.insert(
                    req_id,
                    PendingEvict::Flush {
                        remaining: 2,
                        victim,
                        conns: pr.conns.clone(),
                        checkpoint: false,
                    },
                );
                ctx.send(
                    self.cfg.ebs,
                    EbsWritePage {
                        req_id,
                        page_id: victim,
                        page: page.clone(),
                        doublewrite: true,
                    },
                );
                ctx.send(
                    self.cfg.ebs,
                    EbsWritePage {
                        req_id,
                        page_id: victim,
                        page,
                        doublewrite: false,
                    },
                );
                self.pool.mark_clean(victim);
                self.pool.remove(victim);
                // stash the fetched page for when the flush acks
                self.pool.insert_unchecked(resp.page_id, resp.page);
                for conn in &pr.conns {
                    if let Some(rt) = self.running.get_mut(conn) {
                        rt.phase = Phase::EvictWait;
                    }
                }
                return;
            }
            self.pool.remove(victim);
        }
        self.pool.insert_unchecked(resp.page_id, resp.page);
        for conn in pr.conns {
            if self.running.contains_key(&conn) {
                self.exec_current_op(ctx, conn);
            }
        }
    }

    fn on_ebs_ack(&mut self, ctx: &mut Ctx<'_>, req_id: u64) {
        // page-flush acks
        if let Some(PendingEvict::Flush { remaining, .. }) = self.evictions.get_mut(&req_id) {
            *remaining -= 1;
            self.flusher_outstanding = self.flusher_outstanding.saturating_sub(1);
            if *remaining == 0 {
                let Some(PendingEvict::Flush {
                    conns, checkpoint, ..
                }) = self.evictions.remove(&req_id)
                else {
                    unreachable!()
                };
                for conn in conns {
                    if self.running.contains_key(&conn) {
                        self.exec_current_op(ctx, conn);
                    }
                }
                if checkpoint {
                    self.drive_checkpoint(ctx);
                }
            }
            return;
        }
        // otherwise this is the commit chain's log/binlog ack
        self.on_flush_ack(ctx);
    }

    // ---- bootstrap / recovery ----

    fn bootstrap(&mut self, ctx: &mut Ctx<'_>) {
        let tree = self.tree;
        self.pool.insert_unchecked(PageId(0), Page::new());
        let bodies = {
            let mut p = MysqlProvider {
                pool: &mut self.pool,
                bodies: Vec::new(),
            };
            tree.create(&mut p).expect("create");
            p.bodies
        };
        self.alloc_lsns(bodies, TxnId::SYSTEM);
        self.bootstrap_next = 0;
        self.bootstrap_chunk(ctx);
    }

    fn bootstrap_chunk(&mut self, ctx: &mut Ctx<'_>) {
        const CHUNK: u64 = 4_000;
        let tree = self.tree;
        let rows = self.cfg.bootstrap_rows;
        let end = (self.bootstrap_next + CHUNK).min(rows);
        for k in self.bootstrap_next..end {
            let row = aurora_core::engine::bootstrap_row(k, self.cfg.row_size);
            let bodies = {
                let mut p = MysqlProvider {
                    pool: &mut self.pool,
                    bodies: Vec::new(),
                };
                tree.insert(&mut p, k, &row).expect("bootstrap insert");
                p.bodies
            };
            self.alloc_lsns(bodies, TxnId::SYSTEM);
            // ship the log in chunks so the EBS actor isn't flooded
            if self.log_buffer.len() >= 4_096 {
                let records = std::mem::take(&mut self.log_buffer);
                let bytes = std::mem::take(&mut self.log_buffer_bytes);
                let req_id = self.next_req;
                self.next_req += 1;
                ctx.send(
                    self.cfg.ebs,
                    EbsAppend {
                        req_id,
                        bytes,
                        records,
                        binlog: false,
                    },
                );
            }
        }
        self.bootstrap_next = end;
        if end < rows {
            // flush dirty pages in the background as the load proceeds so
            // the final checkpoint is not one giant burst
            let dirty = self.pool.dirty_pages();
            for page_id in dirty.into_iter().take(512) {
                if let Some(page) = self.pool.peek(page_id) {
                    let page = page.clone();
                    let req_id = self.next_req;
                    self.next_req += 1;
                    ctx.send(
                        self.cfg.ebs,
                        EbsWritePage {
                            req_id,
                            page_id,
                            page,
                            doublewrite: false,
                        },
                    );
                    self.pool.mark_clean(page_id);
                }
            }
            ctx.set_timer(SimDuration::from_millis(2), TAG_BOOTSTRAP);
            return;
        }
        // final flush: bootstrap pages durable, checkpoint taken
        let dirty = self.pool.dirty_pages();
        for page_id in dirty {
            if let Some(page) = self.pool.peek(page_id) {
                let page = page.clone();
                let req_id = self.next_req;
                self.next_req += 1;
                ctx.send(
                    self.cfg.ebs,
                    EbsWritePage {
                        req_id,
                        page_id,
                        page,
                        doublewrite: false,
                    },
                );
                self.pool.mark_clean(page_id);
            }
        }
        let records = std::mem::take(&mut self.log_buffer);
        let bytes = std::mem::take(&mut self.log_buffer_bytes);
        if !records.is_empty() {
            let req_id = self.next_req;
            self.next_req += 1;
            ctx.send(
                self.cfg.ebs,
                EbsAppend {
                    req_id,
                    bytes,
                    records,
                    binlog: false,
                },
            );
        }
        self.durable_checkpoint = Lsn(self.next_lsn - 1);
        self.redo_since_checkpoint = 0;
        self.pool.shrink_to_capacity(Lsn(u64::MAX));
        self.status = Status::Ready;
        ctx.inc("mysql.bootstrap_rows", self.cfg.bootstrap_rows);
    }

    fn start_recovery(&mut self, ctx: &mut Ctx<'_>) {
        self.status = Status::Recovering;
        self.replay_started = ctx.now();
        let req_id = self.next_req;
        self.next_req += 1;
        ctx.send(
            self.cfg.ebs,
            ReplayReq {
                req_id,
                from_lsn: Lsn::ZERO,
            },
        );
    }

    fn on_replay(&mut self, ctx: &mut Ctx<'_>, records: Vec<LogRecord>) {
        // charge replay time for the tail since the checkpoint — this is
        // the cost Aurora eliminates (§4.3)
        let tail = records
            .iter()
            .filter(|r| r.lsn > self.durable_checkpoint)
            .count() as u64;
        let replay = SimDuration::from_secs_f64(tail as f64 / self.cfg.replay_rate.max(1) as f64);
        // fold the tail into the EBS page images
        let apply: Vec<LogRecord> = records
            .iter()
            .filter(|r| r.lsn > self.durable_checkpoint)
            .cloned()
            .collect();
        ctx.send(self.cfg.ebs, crate::ebs::ApplyToPages { records: apply });
        // reconstruct txn status + logical undo set
        let mut begun: Vec<TxnId> = Vec::new();
        let mut finished: Vec<TxnId> = Vec::new();
        let mut undos: Vec<(Lsn, TxnId, Op)> = Vec::new();
        let mut max_lsn = 0u64;
        let mut max_txn = 0u64;
        for r in &records {
            max_lsn = max_lsn.max(r.lsn.0);
            max_txn = max_txn.max(r.txn.0);
            match &r.body {
                RecordBody::TxnBegin => begun.push(r.txn),
                RecordBody::TxnCommit | RecordBody::TxnAbort => finished.push(r.txn),
                RecordBody::Undo { data } if data.len() > 8 => {
                    let t = TxnId(u64::from_le_bytes(data[0..8].try_into().unwrap()));
                    if let Some(op) = decode_undo(&data[8..]) {
                        undos.push((r.lsn, t, op));
                    }
                }
                _ => {}
            }
        }
        self.next_lsn = max_lsn + 1;
        self.next_txn = max_txn + 1;
        let in_flight: Vec<TxnId> = begun
            .into_iter()
            .filter(|t| !finished.contains(t))
            .collect();
        // stash rollbacks to run after the replay pause (BTreeMap so the
        // rollback order is txn-id order, not hash order)
        let mut per_txn: std::collections::BTreeMap<TxnId, Vec<(Lsn, Op)>> =
            std::collections::BTreeMap::new();
        for (lsn, t, op) in undos {
            if in_flight.contains(&t) {
                per_txn.entry(t).or_default().push((lsn, op));
            }
        }
        self.pending_rollbacks = per_txn
            .into_iter()
            .map(|(t, mut ops)| {
                ops.sort_by_key(|(l, _)| std::cmp::Reverse(*l));
                (t, ops.into_iter().map(|(_, op)| op).collect())
            })
            .collect();
        ctx.set_timer(replay, TAG_REPLAY_DONE);
    }
}

impl Actor for MysqlEngine {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ActorEvent) {
        match ev {
            ActorEvent::Start => {
                self.bootstrap(ctx);
                ctx.set_timer(self.cfg.flusher_interval, TAG_FLUSHER);
                ctx.set_timer(SimDuration::from_millis(5), TAG_SWEEP);
            }
            ActorEvent::Restarted => {
                self.start_recovery(ctx);
                ctx.set_timer(self.cfg.flusher_interval, TAG_FLUSHER);
                ctx.set_timer(SimDuration::from_millis(5), TAG_SWEEP);
            }
            ActorEvent::Timer { tag } => match tag {
                TAG_FLUSHER => {
                    if !self.checkpoint_active {
                        let dirty = self.pool.dirty_pages();
                        for page_id in dirty.into_iter().take(self.cfg.flusher_batch) {
                            self.flush_page(ctx, page_id, false);
                        }
                    }
                    ctx.set_timer(self.cfg.flusher_interval, TAG_FLUSHER);
                }
                TAG_SWEEP => {
                    let now = ctx.now();
                    let timed_out: Vec<u64> = self
                        .running
                        .iter()
                        .filter(|(_, rt)| {
                            matches!(rt.phase, Phase::LockWait { since, .. }
                                if now.since(since) > self.cfg.lock_wait_timeout)
                        })
                        .map(|(c, _)| *c)
                        .collect();
                    for conn in timed_out {
                        ctx.inc("mysql.lock_timeouts", 1);
                        self.abort_txn(ctx, conn, "lock wait timeout".into());
                    }
                    ctx.set_timer(SimDuration::from_millis(5), TAG_SWEEP);
                }
                TAG_BOOTSTRAP if self.status == Status::Bootstrapping => {
                    self.bootstrap_chunk(ctx);
                }
                TAG_REPLAY_DONE => {
                    self.status = Status::Ready;
                    ctx.inc("mysql.recoveries", 1);
                    ctx.record(
                        "mysql.recovery_ns",
                        ctx.now().since(self.replay_started).nanos(),
                    );
                    let rollbacks = std::mem::take(&mut self.pending_rollbacks);
                    for (t, ops) in rollbacks {
                        self.spawn_rollback(ctx, t, ops);
                    }
                }
                t if t >= TAG_CPU_BASE => {
                    self.exec_current_op(ctx, t - TAG_CPU_BASE);
                }
                t if t >= TAG_MUTEX_BASE => {
                    // log mutex released: proceed to the next op
                    self.start_op(ctx, t - TAG_MUTEX_BASE);
                }
                _ => {}
            },
            ActorEvent::Message { from, msg } => {
                let _ = from;
                let msg = match msg.downcast::<ClientRequest>() {
                    Ok(req) => {
                        self.begin_request(ctx, from, req);
                        return;
                    }
                    Err(m) => m,
                };
                let msg = match msg.downcast::<EbsAck>() {
                    Ok(a) => {
                        self.on_ebs_ack(ctx, a.req_id);
                        return;
                    }
                    Err(m) => m,
                };
                let msg = match msg.downcast::<EbsReadResp>() {
                    Ok(r) => {
                        self.on_read_resp(ctx, r);
                        return;
                    }
                    Err(m) => m,
                };
                let msg = match msg.downcast::<StandbyAck>() {
                    Ok(_) => {
                        self.on_flush_ack(ctx);
                        return;
                    }
                    Err(m) => m,
                };
                if let Ok(r) = msg.downcast::<ReplayResp>() {
                    self.on_replay(ctx, r.records);
                }
            }
            ActorEvent::DiskDone { .. } => {}
        }
    }

    fn on_crash(&mut self) {
        self.status = Status::Recovering;
        self.pool.clear();
        self.log_buffer.clear();
        self.log_buffer_bytes = 0;
        self.commit_queue.clear();
        self.flush = None;
        self.locks = LockTable::new();
        self.running.clear();
        self.reads.clear();
        self.page_waits.clear();
        self.evictions.clear();
        self.stalled_writes.clear();
        self.checkpoint_active = false;
        self.checkpoint_queue.clear();
        self.flusher_outstanding = 0;
        self.pending_rollbacks.clear();
        self.log_mutex_free = SimTime::ZERO;
        let vcpus = self.cfg.instance.vcpus as usize;
        self.vcpu_free = vec![SimTime::ZERO; vcpus];
        // durable_checkpoint survives (it lives in the log header on EBS)
    }
}
