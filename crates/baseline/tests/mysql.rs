//! End-to-end tests for the traditional (mirrored MySQL) stack.

use aurora_baseline::{MysqlCluster, MysqlClusterConfig, MysqlEngine};
use aurora_core::wire::*;
use aurora_sim::SimDuration;

fn committed(resp: &ClientResponse) -> &[OpResult] {
    match &resp.result {
        TxnResult::Committed(rs) => rs,
        TxnResult::Aborted(m) => panic!("unexpected abort: {m}"),
    }
}

#[test]
fn basic_read_write_cycle() {
    let mut c = MysqlCluster::build(MysqlClusterConfig {
        seed: 1,
        bootstrap_rows: 100,
        ..Default::default()
    });
    c.sim.run_for(SimDuration::from_millis(200));
    c.submit(1, TxnSpec::single(Op::Insert(500, b"mysql".to_vec())));
    c.sim.run_for(SimDuration::from_millis(100));
    c.submit(2, TxnSpec::single(Op::Get(500)));
    c.sim.run_for(SimDuration::from_millis(100));
    let rs = c.responses();
    assert_eq!(rs.len(), 2);
    match &committed(&rs[1])[0] {
        OpResult::Row(Some(row)) => assert_eq!(&row[..5], b"mysql"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn mirrored_commit_latency_exceeds_single_az() {
    let run = |mirrored: bool| {
        let mut c = MysqlCluster::build(MysqlClusterConfig {
            seed: 2,
            mirrored,
            bootstrap_rows: 100,
            ..Default::default()
        });
        c.sim.run_for(SimDuration::from_millis(200));
        c.sim.clear_stats();
        for i in 0..50u64 {
            c.submit(i, TxnSpec::single(Op::Upsert(i, vec![1])));
            c.sim.run_for(SimDuration::from_millis(20));
        }
        c.sim.metrics.histogram_total("mysql.commit_ns").p50()
    };
    let single = run(false);
    let mirrored = run(true);
    // Figure 2: the standby chain adds a synchronous cross-AZ leg plus a
    // second EBS pair — latency is additive.
    assert!(
        mirrored as f64 > single as f64 * 1.3,
        "mirrored {mirrored}ns vs single {single}ns"
    );
}

#[test]
fn write_path_issues_log_binlog_and_page_ios() {
    let mut c = MysqlCluster::build(MysqlClusterConfig {
        seed: 3,
        mirrored: true,
        bootstrap_rows: 100,
        ..Default::default()
    });
    c.sim.run_for(SimDuration::from_millis(200));
    c.sim.clear_stats();
    for i in 0..100u64 {
        c.submit(i, TxnSpec::single(Op::Upsert(i, vec![2])));
        c.sim.run_for(SimDuration::from_millis(5));
    }
    c.sim.run_for(SimDuration::from_millis(500));
    let commits = c.sim.metrics.counter_total("mysql.write_txns");
    assert_eq!(commits, 100);
    // the amplified write kinds of Figure 2 all occur
    let log = c.sim.net().class_packets("ebs_log_write");
    let pages = c.sim.net().class_packets("ebs_page_write");
    let ship = c.sim.net().class_packets("standby_ship");
    assert!(log >= 100, "log flushes {log}"); // log + binlog appends
    assert!(pages > 0, "page flushes {pages}");
    assert!(ship > 0, "standby shipping {ship}");
}

#[test]
fn crash_recovery_replays_and_rolls_back() {
    let mut c = MysqlCluster::build(MysqlClusterConfig {
        seed: 4,
        bootstrap_rows: 100,
        ..Default::default()
    });
    c.sim.run_for(SimDuration::from_millis(200));
    // committed work
    for i in 0..10u64 {
        c.submit(i, TxnSpec::single(Op::Insert(1_000 + i, vec![5])));
    }
    c.sim.run_for(SimDuration::from_millis(300));
    assert_eq!(c.sim.metrics.counter_total("mysql.write_txns"), 10);
    // an in-flight transaction at crash time
    let ops: Vec<Op> = (0..30u64).map(|i| Op::Insert(2_000 + i, vec![6])).collect();
    c.submit(99, TxnSpec { ops });
    c.sim.run_for(SimDuration::from_micros(800));
    c.sim.crash(c.engine);
    c.sim.run_for(SimDuration::from_millis(20));
    c.sim.restart(c.engine);
    c.sim.run_for(SimDuration::from_millis(1_000));
    assert!(c.sim.actor::<MysqlEngine>(c.engine).is_ready());
    assert!(c.sim.metrics.counter_total("mysql.recoveries") >= 1);

    // committed rows visible, uncommitted rolled back
    for i in 0..10u64 {
        c.submit(3_000 + i, TxnSpec::single(Op::Get(1_000 + i)));
    }
    for i in 0..30u64 {
        c.submit(4_000 + i, TxnSpec::single(Op::Get(2_000 + i)));
    }
    c.sim.run_for(SimDuration::from_millis(2_000));
    let rs = c.responses();
    for r in rs.iter().filter(|r| (3_000..3_010).contains(&r.conn)) {
        match &committed(r)[0] {
            OpResult::Row(Some(row)) => assert_eq!(row[0], 5),
            other => panic!("committed row lost: {other:?}"),
        }
    }
    let rolled: Vec<_> = rs.iter().filter(|r| r.conn >= 4_000).collect();
    assert_eq!(rolled.len(), 30);
    for r in rolled {
        match &committed(r)[0] {
            OpResult::Row(None) => {}
            other => panic!("uncommitted write survived: {other:?}"),
        }
    }
}

#[test]
fn checkpoints_stall_foreground_writes() {
    let mut c = MysqlCluster::build_with(
        MysqlClusterConfig {
            seed: 5,
            bootstrap_rows: 8_000,
            checkpoint_every_records: Some(400), // checkpoint frequently
            ..Default::default()
        },
        |e| {
            e.flusher_interval = SimDuration::from_millis(1_000); // lazy flusher
            e.flusher_batch = 4; // slow checkpoint drain
        },
    );
    c.sim.run_for(SimDuration::from_millis(1_000));
    c.sim.clear_stats();
    // writes scattered widely dirty many pages; continuous submission
    // guarantees writes arrive while a checkpoint is draining
    for i in 0..300u64 {
        c.submit(
            i,
            TxnSpec::single(Op::Upsert(i * 53 % 8_000, vec![i as u8])),
        );
        c.sim.run_for(SimDuration::from_micros(500));
    }
    c.sim.run_for(SimDuration::from_secs(2));
    assert!(c.sim.metrics.counter_total("mysql.checkpoints") >= 1);
    assert!(
        c.sim.metrics.counter_total("mysql.checkpoint_stalls") > 0,
        "checkpointing must interfere with foreground writes"
    );
    assert_eq!(c.sim.metrics.counter_total("mysql.write_txns"), 300);
}

#[test]
fn binlog_replica_lags_under_write_pressure() {
    let mut c = MysqlCluster::build(MysqlClusterConfig {
        seed: 6,
        bootstrap_rows: 100,
        binlog_replicas: 1,
        replica_apply_cost: SimDuration::from_millis(2), // 500/s capacity
        ..Default::default()
    });
    c.sim.run_for(SimDuration::from_millis(200));
    // ~2000 commits/s demand for 1 simulated second
    for burst in 0..100u64 {
        for i in 0..20u64 {
            c.submit(burst * 20 + i, TxnSpec::single(Op::Upsert(i, vec![1])));
        }
        c.sim.run_for(SimDuration::from_millis(10));
    }
    let lag = c.sim.metrics.histogram_total("mysql.replica_lag_ns");
    assert!(lag.count() > 0);
    assert!(
        lag.max() > SimDuration::from_millis(300).nanos(),
        "overloaded single-threaded apply must lag: max {}ms",
        lag.max() / 1_000_000
    );
}

#[test]
fn tiny_cache_forces_eviction_flushes() {
    let mut c = MysqlCluster::build_with(
        MysqlClusterConfig {
            seed: 7,
            bootstrap_rows: 4_000,
            ..Default::default()
        },
        |e| {
            e.instance.buffer_pages = 16;
            e.flusher_interval = SimDuration::from_secs(10); // keep pages dirty
        },
    );
    c.sim.run_for(SimDuration::from_millis(3_000));
    c.sim.clear_stats();
    // writes scattered across the keyspace dirty many pages; reads of cold
    // pages then force dirty evictions
    for i in 0..100u64 {
        c.submit(i, TxnSpec::single(Op::Upsert(i * 37 % 4_000, vec![1])));
        c.sim.run_for(SimDuration::from_millis(5));
    }
    c.sim.run_for(SimDuration::from_millis(2_000));
    assert!(
        c.sim.metrics.counter_total("mysql.page_fetches") > 0,
        "cold reads must fetch"
    );
    assert!(
        c.sim.metrics.counter_total("mysql.evict_flushes") > 0,
        "dirty victims must be flushed in the foreground"
    );
}
