//! Continuous backup and point-in-time restore (Fig. 4 step 6, §5).
//!
//! Storage nodes stage log and page snapshots to the object store in the
//! background ("backups … do not interfere with foreground processing");
//! a volume can then be reconstructed *as of any LSN* from the archive.
//!
//! ```text
//! cargo run --release --example backup_restore
//! ```

use aurora::core::cluster::{Cluster, ClusterConfig};
use aurora::core::wire::{Op, TxnSpec};
use aurora::log::{apply_record, Lsn, Page, PageId, SegmentId};
use aurora::sim::SimDuration;
use aurora::storage::ObjectStore;

fn main() {
    let store = ObjectStore::new();
    let mut cluster = Cluster::build(ClusterConfig {
        seed: 41,
        pgs: 1,
        pages_per_pg: 4_000,
        storage_nodes: 6,
        // start empty: bootstrap-row hashes would confuse the byte scan
        bootstrap_rows: 0,
        store: Some(store.clone()),
        ..Default::default()
    });
    cluster.sim.run_for(SimDuration::from_millis(500));

    // Write in two phases with a known LSN boundary between them.
    for i in 0..50u64 {
        cluster.submit(i, TxnSpec::single(Op::Upsert(i, vec![0xAA; 4])));
    }
    cluster.sim.run_for(SimDuration::from_secs(1));
    let boundary = cluster.engine_actor().vdl();
    println!("phase 1 done; restore point = LSN {boundary}");

    for i in 0..50u64 {
        cluster.submit(100 + i, TxnSpec::single(Op::Upsert(i, vec![0xBB; 4])));
    }
    // give the background backup timers time to archive everything
    cluster.sim.run_for(SimDuration::from_secs(5));

    let seg = SegmentId::new(aurora::log::PgId(0), 0);
    println!(
        "object store: {} increments, {} bytes archived",
        store.increments(seg),
        store.total_bytes()
    );

    // Point-in-time restore of the segment as of the phase-1 boundary.
    let (pages, records) = store
        .restore(seg, boundary)
        .expect("archive covers the restore point");
    println!(
        "restore to LSN {boundary}: {} snapshot pages + {} archived records to replay",
        pages.len(),
        records.len()
    );

    // Materialize one page and verify it reflects phase 1, not phase 2:
    // rows written in phase 2 (0xBB) must not appear.
    let mut by_id: std::collections::HashMap<PageId, Page> = pages.into_iter().collect();
    for rec in &records {
        if let Some(pid) = rec.page() {
            let page = by_id.entry(pid).or_default();
            let _ = apply_record(page, rec);
        }
    }
    // whole-row runs only: single bytes occur innocently in headers
    let mut phase2_rows = 0usize;
    let mut phase1_rows = 0usize;
    for page in by_id.values() {
        phase1_rows += page.bytes().windows(4).filter(|w| w == &[0xAA; 4]).count();
        phase2_rows += page.bytes().windows(4).filter(|w| w == &[0xBB; 4]).count();
    }
    println!("restored volume: {phase1_rows} phase-1 rows, {phase2_rows} phase-2 rows");
    assert!(phase1_rows > 0, "phase 1 data must be present");
    assert_eq!(
        phase2_rows, 0,
        "phase 2 data must be absent at the restore point"
    );
    println!("PITR verified: the restored image is exactly the pre-phase-2 state");
    let _ = Lsn::ZERO;
}
