//! Fault injection: the §2 durability story, live — driven by a
//! declarative, replayable [`FaultPlan`].
//!
//! The entire chaos schedule is a single value built up front: kill a
//! storage node (transparent: 4/6 quorum), heal it, then take down an
//! entire availability zone (writes continue), then AZ+1 (writes stall,
//! no data is lost, and everything resumes on heal). The last victim
//! stays dead so the control plane repairs its segments onto a spare.
//! Because the plan executes on simulated time inside the DES kernel,
//! re-running this binary reproduces the same trace bit-for-bit; change
//! the seed to explore a different interleaving of the same schedule.
//!
//! ```text
//! cargo run --release --example fault_injection
//! ```

use aurora::core::cluster::{Cluster, ClusterConfig};
use aurora::core::wire::{Op, TxnSpec};
use aurora::sim::{FaultAction, FaultPlan, SimDuration, Zone};
use aurora::storage::ControlPlane;

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

fn pump(cluster: &mut Cluster, base: u64, n: u64) {
    for i in 0..n {
        cluster.submit(
            base + i,
            TxnSpec::single(Op::Upsert(i % 500, vec![i as u8])),
        );
    }
    cluster.sim.run_for(ms(400));
}

fn main() {
    let mut cluster = Cluster::build(ClusterConfig {
        seed: 11,
        pgs: 2,
        pages_per_pg: 4_000,
        storage_nodes: 6,
        spares: 3,
        bootstrap_rows: 500,
        with_control: true,
        ..Default::default()
    });
    cluster.sim.run_for(SimDuration::from_millis(500));
    // durable commits = acknowledged to clients (not merely logged)
    let commits = |c: &Cluster| c.sim.metrics.counter_total("engine.commits");

    println!("== baseline: 50 transactions");
    pump(&mut cluster, 0, 50);
    println!("   committed: {}", commits(&cluster));

    // The whole scenario, declared up front. Offsets are relative to the
    // install point below; the driver only pumps load and reads metrics.
    let victim = cluster.storage[4];
    let extra = *cluster
        .storage
        .iter()
        .find(|n| cluster.sim.zone_of(**n) == Zone(0))
        .unwrap();
    let plan = FaultPlan::new()
        // background-noise failure, healed after one pump window
        .crash_for(ms(0), ms(400), victim)
        // 1s of gossip refill, then a whole AZ goes dark
        .at(ms(1400), FaultAction::ZoneDown(Zone(1)))
        // one more node on top of the AZ outage: below write quorum.
        // No matching Restart — the control plane repairs onto a spare.
        .at(ms(1800), FaultAction::Crash(extra))
        // the AZ comes back; stalled commits complete
        .at(ms(2200), FaultAction::ZoneUp(Zone(1)));
    println!(
        "== installing fault plan ({} scheduled actions):",
        plan.len()
    );
    for (after, action) in plan.entries() {
        println!("   +{:>6} µs  {:?}", after.micros(), action);
    }
    cluster.sim.install_fault_plan(&plan);

    println!("== kill one storage node (background noise failure)");
    pump(&mut cluster, 100, 50);
    println!(
        "   committed: {} — a single segment loss is invisible to writes",
        commits(&cluster)
    );

    println!("== the plan restarted the node; gossip refills it");
    cluster.sim.run_for(SimDuration::from_secs(1));
    println!(
        "   gossip refilled the restarted node ({} records via peers)",
        cluster.sim.metrics.counter_total("storage.gossip_filled")
    );

    println!("== now lose a whole AZ (2 of 6 replicas in every PG)");
    pump(&mut cluster, 200, 50);
    println!(
        "   committed: {} — 4/6 write quorum tolerates an AZ outage",
        commits(&cluster)
    );

    println!("== AZ + one more node: below write quorum");
    let before = commits(&cluster);
    pump(&mut cluster, 300, 20);
    println!(
        "   committed while below quorum: {} (writes stall, nothing is lost or falsely acked)",
        commits(&cluster) - before
    );

    println!("== heal the AZ: stalled commits complete");
    cluster.sim.run_for(SimDuration::from_secs(1));
    println!("   committed: {}", commits(&cluster));

    println!("== `extra` stays dead: the control plane repairs onto a spare");
    cluster.sim.run_for(SimDuration::from_secs(4));
    let ctl = cluster.sim.actor::<ControlPlane>(cluster.control.unwrap());
    println!(
        "   repairs completed: {} (segments re-replicated, membership bumped)",
        ctl.repairs_completed
    );
    pump(&mut cluster, 400, 50);
    println!("   committed after repair: {}", commits(&cluster));
    println!(
        "   total aborts seen by clients: {}",
        cluster.sim.metrics.counter_total("engine.aborts")
    );
}
