//! Fault injection: the §2 durability story, live.
//!
//! Kills a storage node (transparent: 4/6 quorum), then an entire
//! availability zone (writes continue), then AZ+1 (writes stall, no data
//! is lost, and everything resumes on heal). Finally, the control plane
//! repairs a dead node's segments onto a spare and the engine keeps going
//! with the new membership.
//!
//! ```text
//! cargo run --release --example fault_injection
//! ```

use aurora::core::cluster::{Cluster, ClusterConfig};
use aurora::core::wire::{Op, TxnSpec};
use aurora::sim::{SimDuration, Zone};
use aurora::storage::ControlPlane;

fn pump(cluster: &mut Cluster, base: u64, n: u64) {
    for i in 0..n {
        cluster.submit(base + i, TxnSpec::single(Op::Upsert(i % 500, vec![i as u8])));
    }
    cluster.sim.run_for(SimDuration::from_millis(400));
}

fn main() {
    let mut cluster = Cluster::build(ClusterConfig {
        seed: 11,
        pgs: 2,
        pages_per_pg: 4_000,
        storage_nodes: 6,
        spares: 3,
        bootstrap_rows: 500,
        with_control: true,
        ..Default::default()
    });
    cluster.sim.run_for(SimDuration::from_millis(500));
    // durable commits = acknowledged to clients (not merely logged)
    let commits = |c: &Cluster| c.sim.metrics.counter_total("engine.commits");

    println!("== baseline: 50 transactions");
    pump(&mut cluster, 0, 50);
    println!("   committed: {}", commits(&cluster));

    println!("== kill one storage node (background noise failure)");
    let victim = cluster.storage[4];
    cluster.sim.crash(victim);
    pump(&mut cluster, 100, 50);
    println!(
        "   committed: {} — a single segment loss is invisible to writes",
        commits(&cluster)
    );

    println!("== kill availability zone 1 as well? first restore the node");
    cluster.sim.restart(victim);
    cluster.sim.run_for(SimDuration::from_secs(1));
    println!(
        "   gossip refilled the restarted node ({} records via peers)",
        cluster.sim.metrics.counter_total("storage.gossip_filled")
    );

    println!("== now lose a whole AZ (2 of 6 replicas in every PG)");
    cluster.sim.zone_down(Zone(1));
    pump(&mut cluster, 200, 50);
    println!(
        "   committed: {} — 4/6 write quorum tolerates an AZ outage",
        commits(&cluster)
    );

    println!("== AZ + one more node: below write quorum");
    let extra = *cluster
        .storage
        .iter()
        .find(|n| cluster.sim.zone_of(**n) == Zone(0))
        .unwrap();
    cluster.sim.crash(extra);
    let before = commits(&cluster);
    pump(&mut cluster, 300, 20);
    println!(
        "   committed while below quorum: {} (writes stall, nothing is lost or falsely acked)",
        commits(&cluster) - before
    );

    println!("== heal the AZ: stalled commits complete");
    cluster.sim.zone_up(Zone(1));
    cluster.sim.run_for(SimDuration::from_secs(1));
    println!("   committed: {}", commits(&cluster));

    println!("== leave `extra` dead: the control plane repairs onto a spare");
    cluster.sim.run_for(SimDuration::from_secs(4));
    let ctl = cluster.sim.actor::<ControlPlane>(cluster.control.unwrap());
    println!(
        "   repairs completed: {} (segments re-replicated, membership bumped)",
        ctl.repairs_completed
    );
    pump(&mut cluster, 400, 50);
    println!("   committed after repair: {}", commits(&cluster));
    println!(
        "   total aborts seen by clients: {}",
        cluster.sim.metrics.counter_total("engine.aborts")
    );
}
