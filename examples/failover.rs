//! Failover without data loss — the headline of the paper's abstract.
//!
//! Because "the log is the database", a writer holds no unique state: a
//! standby in another AZ takes over by running volume recovery against
//! the storage fleet. The recovery epoch simultaneously *fences* the old
//! writer — if it comes back as a zombie, its writes can never reach a
//! quorum again, and it steps down on the first rejection.
//!
//! ```text
//! cargo run --release --example failover
//! ```

use aurora::core::cluster::{Cluster, ClusterConfig};
use aurora::core::engine::{EngineActor, EngineStatus};
use aurora::core::wire::{Op, OpResult, TxnResult, TxnSpec};
use aurora::sim::SimDuration;

fn main() {
    let mut cluster = Cluster::build(ClusterConfig {
        seed: 71,
        pgs: 2,
        pages_per_pg: 4_000,
        storage_nodes: 6,
        bootstrap_rows: 500,
        with_standby: true,
        ..Default::default()
    });
    cluster.sim.run_for(SimDuration::from_millis(300));

    // Commit work on the primary.
    for i in 0..30u64 {
        cluster.submit(i, TxnSpec::single(Op::Insert(9_000 + i, vec![0x5A; 4])));
    }
    cluster.sim.run_for(SimDuration::from_millis(300));
    println!(
        "primary committed {} transactions",
        cluster.responses().len()
    );

    // The primary is partitioned away (it doesn't know it's dead).
    let old = cluster.engine;
    for &s in &cluster.storage.clone() {
        cluster.sim.partition_both(old, s, true);
    }
    println!("primary partitioned from the storage fleet; promoting the standby…");

    // Promote: the standby recovers the volume at a new epoch.
    let new_writer = cluster.promote_standby();
    while cluster.sim.actor::<EngineActor>(new_writer).status() != EngineStatus::Ready {
        cluster.sim.run_for(SimDuration::from_millis(10));
    }
    println!(
        "standby promoted in {:.2} ms of simulated recovery (no log replay)",
        cluster
            .sim
            .metrics
            .histogram_total("engine.recovery_ns")
            .max() as f64
            / 1e6
    );

    // Every acknowledged commit survives; new writes flow.
    cluster.submit_to(new_writer, 1_000, TxnSpec::single(Op::Get(9_015)));
    cluster.submit_to(
        new_writer,
        1_001,
        TxnSpec::single(Op::Insert(10_000, vec![1; 4])),
    );
    cluster.sim.run_for(SimDuration::from_secs(1));
    for resp in cluster.responses().iter().filter(|r| r.conn >= 1_000) {
        match &resp.result {
            TxnResult::Committed(results) => match &results[0] {
                OpResult::Row(Some(_)) => {
                    println!("  pre-failover data readable on the new writer")
                }
                OpResult::Done => println!("  new write committed on the new writer"),
                other => println!("  {other:?}"),
            },
            TxnResult::Aborted(m) => println!("  aborted: {m}"),
        }
    }

    // The zombie wakes up and tries to write: fenced, steps down.
    for &s in &cluster.storage.clone() {
        cluster.sim.partition_both(old, s, false);
    }
    cluster.submit_to(
        old,
        2_000,
        TxnSpec::single(Op::Upsert(9_000, vec![0xEE; 4])),
    );
    cluster.sim.run_for(SimDuration::from_secs(1));
    let zombie_resp = cluster.responses().into_iter().find(|r| r.conn == 2_000);
    match zombie_resp {
        Some(r) => println!("zombie write outcome: {:?}", r.result),
        None => println!("zombie write outcome: never acknowledged (no quorum at stale epoch)"),
    }
    println!(
        "old writer status after fencing: {:?} (stepped down)",
        cluster.sim.actor::<EngineActor>(old).status()
    );
    println!(
        "fenced batches rejected by storage: {}",
        cluster.sim.metrics.counter_total("storage.fenced_batches")
    );
}
