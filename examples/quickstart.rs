//! Quickstart: bring up an Aurora cluster — one writer, a six-node
//! storage fleet spread over three availability zones — run transactions,
//! crash the writer, and watch it recover without replaying any log.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use aurora::core::cluster::{Cluster, ClusterConfig};
use aurora::core::engine::{EngineActor, EngineStatus};
use aurora::core::wire::{Op, OpResult, TxnResult, TxnSpec};
use aurora::sim::SimDuration;

fn main() {
    // A small volume: 2 protection groups, 6 storage nodes, 1000 rows.
    let mut cluster = Cluster::build(ClusterConfig {
        seed: 7,
        pgs: 2,
        pages_per_pg: 4_000,
        storage_nodes: 6,
        bootstrap_rows: 1_000,
        ..Default::default()
    });
    cluster.sim.run_for(SimDuration::from_millis(300));
    println!(
        "cluster up: VDL = {} after bootstrap",
        cluster.engine_actor().vdl()
    );

    // A read-modify-write transaction.
    cluster.submit(
        1,
        TxnSpec {
            ops: vec![
                Op::Get(42),
                Op::Insert(5_000, b"hello aurora".to_vec()),
                Op::Update(42, b"updated row".to_vec()),
            ],
        },
    );
    cluster.sim.run_for(SimDuration::from_millis(50));

    // Commits are acknowledged only once the commit record is covered by
    // the Volume Durable LSN (4/6 quorum in every touched protection group).
    for resp in cluster.responses() {
        match resp.result {
            TxnResult::Committed(results) => {
                println!("txn {} committed; {} op results", resp.conn, results.len())
            }
            TxnResult::Aborted(why) => println!("txn {} aborted: {why}", resp.conn),
        }
    }

    // Crash the writer. All engine state is volatile — the log is the
    // database, and the storage fleet holds it.
    println!("crashing the writer...");
    cluster.sim.crash(cluster.engine);
    cluster.sim.run_for(SimDuration::from_millis(100));
    cluster.sim.restart(cluster.engine);

    // Recovery: read-quorum discovery of the durable point, epoch-versioned
    // truncation, undo of in-flight transactions. No redo replay.
    let mut waited = 0;
    while cluster.engine_actor().status() != EngineStatus::Ready {
        cluster.sim.run_for(SimDuration::from_millis(10));
        waited += 10;
    }
    let recovery = cluster.sim.metrics.histogram_total("engine.recovery_ns");
    println!(
        "writer recovered in {:.2} ms of simulated time (~{waited} ms wall in the loop)",
        recovery.max() as f64 / 1e6
    );

    // Data written before the crash is still there.
    cluster.submit(2, TxnSpec::single(Op::Get(5_000)));
    cluster.submit(3, TxnSpec::single(Op::Get(42)));
    cluster.sim.run_for(SimDuration::from_millis(200));
    for resp in cluster.responses().iter().filter(|r| r.conn >= 2) {
        if let TxnResult::Committed(results) = &resp.result {
            if let OpResult::Row(Some(row)) = &results[0] {
                let text = String::from_utf8_lossy(
                    &row[..row.iter().position(|&b| b == 0).unwrap_or(row.len())],
                );
                println!("after recovery, key read by txn {} = {:?}", resp.conn, text);
            }
        }
    }
    let engine = cluster.sim.actor::<EngineActor>(cluster.engine);
    println!("final VDL = {}", engine.vdl());
}
