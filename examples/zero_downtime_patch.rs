//! Zero-Downtime Patching (§7.4): patch the engine while transactions are
//! in flight. The engine waits for an instant with no active transactions,
//! spools session state, swaps versions, and queues (never drops) requests
//! arriving during the swap.
//!
//! ```text
//! cargo run --release --example zero_downtime_patch
//! ```

use aurora::core::cluster::{Cluster, ClusterConfig};
use aurora::core::engine::EngineActor;
use aurora::core::wire::{Op, TxnSpec, ZdpDone, ZdpPatch};
use aurora::sim::{Probe, Relay, SimDuration};

fn main() {
    let mut cluster = Cluster::build(ClusterConfig {
        seed: 31,
        pgs: 2,
        pages_per_pg: 4_000,
        storage_nodes: 6,
        bootstrap_rows: 1_000,
        ..Default::default()
    });
    cluster.sim.run_for(SimDuration::from_millis(300));
    println!(
        "engine version before patch: {}",
        cluster.sim.actor::<EngineActor>(cluster.engine).version()
    );

    // Keep transactions flowing while the patch request lands.
    for i in 0..40u64 {
        cluster.submit(i, TxnSpec::single(Op::Upsert(i % 1_000, vec![1])));
    }
    let engine = cluster.engine;
    let client = cluster.client;
    cluster
        .sim
        .tell(client, Relay::new(engine, ZdpPatch { version: 2 }));
    for i in 40..80u64 {
        cluster.submit(i, TxnSpec::single(Op::Upsert(i % 1_000, vec![2])));
    }
    cluster.sim.run_for(SimDuration::from_millis(500));

    let probe = cluster.sim.actor::<Probe>(cluster.client);
    let done = probe.received::<ZdpDone>();
    let d = done.first().expect("patch completed").1;
    println!(
        "patched to version {}: sessions preserved = {}, connections dropped = {}",
        d.version, d.sessions_preserved, d.connections_dropped
    );
    println!(
        "engine version after patch: {}",
        cluster.sim.actor::<EngineActor>(cluster.engine).version()
    );
    println!(
        "transactions committed around the patch: {} of 80 (queued during the swap, none dropped)",
        cluster.responses().len()
    );
}
