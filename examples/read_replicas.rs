//! Read replicas (§4.2.4): up to 15 readers mount the same storage volume,
//! consume the writer's log stream, and serve reads with millisecond lag —
//! no extra storage, no binlog apply thread.
//!
//! ```text
//! cargo run --release --example read_replicas
//! ```

use aurora::core::cluster::{Cluster, ClusterConfig};
use aurora::core::replica::ReplicaActor;
use aurora::core::wire::{Op, OpResult, TxnResult, TxnSpec};
use aurora::sim::SimDuration;

fn main() {
    let mut cluster = Cluster::build(ClusterConfig {
        seed: 21,
        pgs: 2,
        pages_per_pg: 4_000,
        storage_nodes: 6,
        replicas: 3,
        bootstrap_rows: 2_000,
        ..Default::default()
    });
    cluster.sim.run_for(SimDuration::from_millis(500));

    // Write a stream of transactions on the writer.
    for i in 0..300u64 {
        cluster.submit(
            i,
            TxnSpec::single(Op::Upsert(i % 2_000, vec![(i % 251) as u8])),
        );
    }
    cluster.sim.run_for(SimDuration::from_millis(800));

    // All three replicas have tracked the writer's durable point.
    let writer_vdl = cluster.engine_actor().vdl();
    println!("writer VDL: {writer_vdl}");
    for (i, &r) in cluster.replicas.clone().iter().enumerate() {
        let vdl = cluster.sim.actor::<ReplicaActor>(r).vdl();
        println!("replica {i} VDL: {vdl}");
    }

    // Replica lag: time from the writer's durability advance to visibility.
    let lag = cluster.sim.metrics.histogram_total("replica.lag_ns");
    println!(
        "replica lag over {} commits: P50 {:.2} ms, P95 {:.2} ms, max {:.2} ms",
        lag.count(),
        lag.p50() as f64 / 1e6,
        lag.p95() as f64 / 1e6,
        lag.max() as f64 / 1e6,
    );

    // Reads on a replica see committed data; writes are refused.
    cluster.submit_to_replica(0, 9_000, TxnSpec::single(Op::Get(7)));
    cluster.submit_to_replica(1, 9_001, TxnSpec::single(Op::Scan(0, 5)));
    cluster.submit_to_replica(2, 9_002, TxnSpec::single(Op::Insert(99, vec![1])));
    cluster.sim.run_for(SimDuration::from_millis(300));
    for resp in cluster.responses().iter().filter(|r| r.conn >= 9_000) {
        match &resp.result {
            TxnResult::Committed(results) => match &results[0] {
                OpResult::Row(Some(row)) => {
                    println!("replica read conn {}: row[0] = {}", resp.conn, row[0])
                }
                OpResult::Rows(rows) => {
                    println!("replica scan conn {}: {} rows", resp.conn, rows.len())
                }
                other => println!("replica conn {}: {other:?}", resp.conn),
            },
            TxnResult::Aborted(why) => {
                println!("replica conn {} refused: {why}", resp.conn)
            }
        }
    }
}
