//! DST harness tests: the sweep passes on healthy code, verdicts are
//! deterministic, every invariant oracle detects a seeded violation
//! (negative tests), failing schedules shrink to minimal reproducers,
//! and the repair lifecycle survives a donor crash mid-repair.
//!
//! The scaled-up version of the sweep runs in CI
//! (`.github/workflows/dst.yml`); see `tests/README.md`.

use aurora::bench::dst::{self, DegradationBudget, DstConfig, OracleViolation, Oracles};
use aurora::core::cluster::Cluster;
use aurora::core::engine::{EngineActor, EngineStatus, HealthState};
use aurora::core::wire::{Op, OpResult, TxnResult, TxnSpec};
use aurora::log::{Lsn, PgId, SegmentId};
use aurora::sim::{trace, FaultAction, FaultPlan, Intensity, PacketChaos, SimDuration};
use aurora::storage::{ControlPlane, StorageNode};

fn conn_of(key: u64, version: u64) -> u64 {
    key * 1_000_000 + version
}

fn value_of(version: u64) -> Vec<u8> {
    let mut v = vec![0u8; 16];
    v[..8].copy_from_slice(&version.to_le_bytes());
    v[8..16].copy_from_slice(&version.wrapping_mul(0x2545_F491_4F6C_DD1D).to_le_bytes());
    v
}

fn decode_version(row: &[u8]) -> u64 {
    u64::from_le_bytes(row[..8].try_into().unwrap())
}

/// Build the DST cluster, warm it up, and run `ticks` x 20ms of
/// sequential writes. Returns the cluster and last acked version per key.
fn cluster_with_load(cfg: &DstConfig, ticks: u64) -> (Cluster, Vec<u64>) {
    let mut c = Cluster::build(dst::cluster_config(cfg));
    if cfg.trace {
        c.sim.trace.enable(dst::TRACE_CAPACITY);
    }
    c.sim.run_for(SimDuration::from_millis(300));
    let keys = cfg.keys as usize;
    let mut next_version = vec![1u64; keys];
    let mut last_acked = vec![0u64; keys];
    for _ in 0..ticks {
        for k in 0..cfg.keys {
            let ki = k as usize;
            let v = next_version[ki];
            c.submit(conn_of(k, v), TxnSpec::single(Op::Upsert(k, value_of(v))));
        }
        c.sim.run_for(SimDuration::from_millis(20));
        for resp in c.responses() {
            let key = (resp.conn / 1_000_000) as usize;
            let version = resp.conn % 1_000_000;
            if key >= keys || version != next_version[key] {
                continue;
            }
            if let TxnResult::Committed(_) = resp.result {
                last_acked[key] = version;
            }
            next_version[key] = version + 1;
        }
    }
    (c, last_acked)
}

// ---------------------------------------------------------------- sweep

/// A healthy build passes a multi-seed sweep: every oracle quiet on every
/// generated schedule. (CI runs hundreds of seeds; this is the smoke
/// slice that keeps tier-1 fast.)
#[test]
fn sweep_passes_all_oracles() {
    for seed in 0..4 {
        let report = dst::run_seed(&DstConfig {
            seed,
            ..Default::default()
        });
        assert!(
            report.passed(),
            "seed {seed} failed: {:?}",
            report.violations
        );
        assert!(report.commits > 0, "seed {seed}: no forward progress");
    }
}

/// Same seed => same plan => bit-identical verdict, including the final
/// simulated clock (the strongest cheap digest of the event order).
#[test]
fn same_seed_gives_identical_report() {
    let cfg = DstConfig {
        seed: 7,
        ..Default::default()
    };
    let a = dst::run_seed(&cfg);
    let b = dst::run_seed(&cfg);
    assert_eq!(a, b, "replay diverged");
}

/// Same seed with tracing on => byte-identical rendered traces (Chrome
/// JSON, NDJSON, watermark timeline). The trace rides on simulated time
/// and interned kinds only, so it is as deterministic as the run itself
/// — and it must capture the commit causal chain, not just be empty.
#[test]
fn same_seed_gives_identical_trace() {
    let cfg = DstConfig {
        seed: 7,
        trace: true,
        ..Default::default()
    };
    let a = dst::run_seed(&cfg);
    let b = dst::run_seed(&cfg);
    let dump = a.trace.as_ref().expect("traced run must carry a dump");
    for kind in ["engine.commit", "engine.batch_quorum", "storage.persist"] {
        assert!(
            dump.ndjson.contains(kind),
            "trace missing {kind} spans from the commit chain"
        );
    }
    assert!(
        dump.watermarks.contains("wm.vdl"),
        "watermark timeline must record VDL advances"
    );
    assert_eq!(a.trace, b.trace, "traces diverged between same-seed runs");
    assert_eq!(a, b, "replay diverged");
}

/// Same seed => bit-identical *per-node metric counters* and network
/// accounting, not just the report digest. This pins the substrate fast
/// paths (interned metric ids, shared log batches, materialization
/// cache, fast-hash maps): none of them may shift a single counter on
/// any node between two runs of the same seed.
#[test]
fn same_seed_gives_identical_metric_counters() {
    type Digest = (Vec<(u32, String, u64)>, u64, u64, u64, u64);
    fn digest() -> Digest {
        let cfg = DstConfig {
            seed: 11,
            ..Default::default()
        };
        let (c, acked) = cluster_with_load(&cfg, 25);
        let counters: Vec<(u32, String, u64)> = c
            .sim
            .metrics
            .counters_snapshot()
            .into_iter()
            .map(|(o, n, v)| (o, n.to_string(), v))
            .collect();
        (
            counters,
            acked.iter().sum::<u64>(),
            c.sim.net().packets,
            c.sim.net().bytes,
            c.sim.now().nanos(),
        )
    }
    let a = digest();
    let b = digest();
    assert!(a.1 > 0, "load must make progress");
    assert!(!a.0.is_empty(), "counters must have been recorded");
    assert_eq!(a, b, "per-node counters diverged between same-seed runs");
}

// ------------------------------------------------- oracle negative tests

/// The SCL oracle flags a storage node that silently loses durable log
/// tail (no epoch bump to justify it). Runs traced so the failure
/// message carries the per-PG watermark timeline — the same forensics
/// the DST runner dumps for failing seeds.
#[test]
fn scl_oracle_detects_forgotten_tail() {
    let cfg = DstConfig {
        trace: true,
        ..Default::default()
    };
    let (mut c, _) = cluster_with_load(&cfg, 20);
    let mut oracles = Oracles::new();
    oracles.poll(&c);

    let node = c.storage[0];
    let segment = {
        let actor = c.sim.actor::<StorageNode>(node);
        actor
            .hosted()
            .into_iter()
            .find(|s| actor.scl(*s).is_some_and(|scl| scl > Lsn(20)))
            .expect("a segment with written records")
    };
    c.sim
        .actor_mut::<StorageNode>(node)
        .test_forget_tail(segment, Lsn(1));
    oracles.poll(&c);

    assert!(
        oracles.violations().iter().any(
            |v| matches!(v, OracleViolation::SclRegressed { node: n, segment: s, .. }
                if *n == node && *s == segment)
        ),
        "SCL regression not detected: {:?}\nwatermark timeline at failure:\n{}",
        oracles.violations(),
        trace::watermark_table(&c.sim.trace)
    );
}

/// The epoch oracle flags a truncation guard that moves backwards (here:
/// a bit-rotted node forgetting its epoch after a real recovery bumped
/// it).
#[test]
fn epoch_oracle_detects_guard_reset() {
    let cfg = DstConfig::default();
    let (mut c, _) = cluster_with_load(&cfg, 10);

    // force a recovery so guards sit at a non-zero epoch
    c.sim.crash(c.engine);
    c.sim.run_for(SimDuration::from_millis(200));
    c.sim.restart(c.engine);
    for _ in 0..100 {
        c.sim.run_for(SimDuration::from_millis(100));
        if c.sim.actor::<EngineActor>(c.engine).status() == EngineStatus::Ready {
            break;
        }
    }

    let node = c.storage[0];
    let segment = {
        let actor = c.sim.actor::<StorageNode>(node);
        actor
            .hosted()
            .into_iter()
            .find(|s| actor.guard_epoch(*s).is_some_and(|e| e.0 > 0))
            .expect("recovery should have bumped at least one guard epoch")
    };

    let mut oracles = Oracles::new();
    oracles.poll(&c);
    c.sim
        .actor_mut::<StorageNode>(node)
        .test_reset_epoch(segment);
    oracles.poll(&c);

    assert!(
        oracles.violations().iter().any(
            |v| matches!(v, OracleViolation::EpochRegressed { node: n, segment: s, .. }
                if *n == node && *s == segment)
        ),
        "epoch regression not detected: {:?}",
        oracles.violations()
    );
}

/// The snapshot-safety tap fires when storage serves page images
/// materialized past the requested read point.
#[test]
fn snapshot_oracle_detects_reads_past_read_point() {
    let cfg = DstConfig::default();
    let mut c = Cluster::build(dst::cluster_config(&cfg));
    c.sim.run_for(SimDuration::from_millis(300));
    assert_eq!(
        c.sim.metrics.counter_total("oracle.read_past_read_point"),
        0
    );

    for node in c.storage.clone() {
        c.sim.actor_mut::<StorageNode>(node).test_serve_future(true);
    }

    // freeze the replica's view of the VDL, keep writing, then read
    // through it: its read points are now far behind the page images a
    // future-serving storage node returns
    let replica = c.replicas[0];
    c.sim.partition_both(replica, c.engine, true);
    for version in 1..=50u64 {
        for k in 0..cfg.keys {
            c.submit(
                conn_of(k, version),
                TxnSpec::single(Op::Upsert(k, value_of(version))),
            );
        }
        c.sim.run_for(SimDuration::from_millis(20));
    }
    let mut replica_conn = 500_000_000u64;
    for k in 0..cfg.keys {
        replica_conn += 1;
        c.submit_to_replica(0, replica_conn, TxnSpec::single(Op::Get(k)));
        c.sim.run_for(SimDuration::from_millis(20));
    }

    let stale = c.sim.metrics.counter_total("oracle.read_past_read_point");
    assert!(
        stale > 0,
        "future-serving storage never tripped the snapshot tap"
    );
    // exactly what run_plan turns the tap into
    let violation = OracleViolation::StaleRead { count: stale };
    assert!(matches!(
        violation,
        OracleViolation::StaleRead { count } if count > 0
    ));
}

/// The durability oracle catches committed data vanishing: every replica
/// of every segment forgets its log tail across a writer restart, and the
/// final read-back comes up short.
#[test]
fn durability_oracle_detects_lost_commits() {
    let cfg = DstConfig::default();
    let (mut c, last_acked) = cluster_with_load(&cfg, 25);
    assert!(
        last_acked.iter().any(|v| *v > 0),
        "workload never committed"
    );

    c.sim.crash(c.engine);
    c.sim.run_for(SimDuration::from_millis(100));
    for node in c.storage.clone() {
        let hosted = c.sim.actor::<StorageNode>(node).hosted();
        let actor = c.sim.actor_mut::<StorageNode>(node);
        for segment in hosted {
            actor.test_forget_tail(segment, Lsn(4));
        }
    }
    c.sim.restart(c.engine);
    for _ in 0..200 {
        c.sim.run_for(SimDuration::from_millis(100));
        if c.sim.actor::<EngineActor>(c.engine).status() == EngineStatus::Ready {
            break;
        }
    }
    assert_eq!(
        c.sim.actor::<EngineActor>(c.engine).status(),
        EngineStatus::Ready,
        "writer must recover to Ready for the read-back"
    );

    // the durability read-back, as run_plan performs it
    let mut violations = Vec::new();
    for k in 0..cfg.keys {
        c.submit(conn_of(k, 900_000), TxnSpec::single(Op::Get(k)));
    }
    c.sim.run_for(SimDuration::from_secs(3));
    let rs = c.responses();
    for k in 0..cfg.keys {
        let acked = last_acked[k as usize];
        let got = rs
            .iter()
            .find(|r| r.conn == conn_of(k, 900_000))
            .and_then(|r| match &r.result {
                TxnResult::Committed(results) => match &results[0] {
                    OpResult::Row(Some(row)) => Some(decode_version(row)),
                    _ => Some(0),
                },
                _ => None,
            })
            .unwrap_or(0);
        if got < acked {
            violations.push(OracleViolation::DurabilityLoss { key: k, acked, got });
        }
    }
    assert!(
        !violations.is_empty(),
        "forgetting every log tail must surface as durability loss"
    );
}

/// The convergence oracle flags a PG that cannot return to full healthy
/// membership (a permanent kill with an empty spare pool).
#[test]
fn convergence_oracle_detects_unhealed_membership() {
    let cfg = DstConfig {
        seed: 11,
        spares: 0,
        converge_budget: SimDuration::from_secs(3),
        ..Default::default()
    };
    let victim = 1; // first storage node (layout: client=0, storage=1..)
    let plan = FaultPlan::new().at(SimDuration::from_millis(100), FaultAction::Crash(victim));
    let report = dst::run_plan(&cfg, &plan);
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, OracleViolation::NotConverged { .. })),
        "dead member with no spare must fail convergence: {:?}",
        report.violations
    );
}

/// The liveness oracle flags a wedged repair: without the supervision
/// deadline (repair_timeout = None), a donor crash mid-repair stalls the
/// job forever.
#[test]
fn liveness_oracle_detects_wedged_repair() {
    let cfg = DstConfig {
        repair_timeout: None, // unsupervised: this is the bug the deadline fixes
        ..Default::default()
    };
    let (mut c, _) = cluster_with_load(&cfg, 10);
    let control_id = c.control.expect("DST clusters run a control plane");

    let victim = c.storage[0];
    c.sim.crash(victim);
    let (donor, replacement) =
        await_repair_job(&mut c, control_id).expect("control never started a repair");
    // kill both ends of the copy: the job can never report RepairDone
    c.sim.crash(donor);
    c.sim.crash(replacement);
    c.sim.run_for(SimDuration::from_secs(5));
    c.sim.restart(donor);
    c.sim.restart(replacement);
    c.sim.run_for(SimDuration::from_secs(5));

    assert!(
        c.sim.actor::<ControlPlane>(control_id).in_repair_count() > 0,
        "without a deadline the orphaned repair job should still be wedged"
    );
    let violations = Oracles::check_convergence(&c);
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, OracleViolation::Wedged { .. })),
        "wedged repair not flagged: {violations:?}"
    );
}

/// The liveness oracle flags a stuck group-commit flush: a seeded
/// ship-path defect leaves batches staged forever, the writer looks
/// perfectly Ready, every storage-side convergence check passes — but
/// commits can never become durable again. `await_convergence` must call
/// that wedged.
#[test]
fn liveness_oracle_detects_stuck_flush() {
    let cfg = DstConfig::default();
    let (mut c, _) = cluster_with_load(&cfg, 10);

    // inject the defect, then offer writes that stage but never ship
    c.sim
        .actor_mut::<EngineActor>(c.engine)
        .test_stall_ship(true);
    for k in 0..cfg.keys {
        c.submit(
            conn_of(k, 800_000),
            TxnSpec::single(Op::Upsert(k, value_of(1))),
        );
    }
    c.sim.run_for(SimDuration::from_millis(500));
    assert!(
        c.sim.actor::<EngineActor>(c.engine).staged_records() > 0,
        "the stalled ship path must leave records staged"
    );
    assert_eq!(
        c.sim.actor::<EngineActor>(c.engine).status(),
        EngineStatus::Ready,
        "the defect is silent: the writer still reports Ready"
    );

    let mut oracles = Oracles::new();
    let violations = dst::await_convergence(&mut c, SimDuration::from_secs(2), &mut oracles);
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, OracleViolation::Wedged { detail } if detail.contains("staged"))),
        "stuck flush not flagged as wedged: {violations:?}"
    );
}

// ------------------------------------------------------------ gray faults

/// Gray-fault sweeps (brownouts, flaky links, stalls under load) pass
/// every oracle, including bounded degradation against the clean twin.
/// (CI runs 100 gray seeds nightly; this is the tier-1 smoke slice.)
#[test]
fn gray_sweep_passes_all_oracles() {
    for seed in 0..3 {
        let report = dst::run_seed(&DstConfig {
            seed,
            intensity: Intensity::gray(),
            degradation: Some(DegradationBudget::default()),
            ..Default::default()
        });
        assert!(
            report.passed(),
            "gray seed {seed} failed: {:?}",
            report.violations
        );
        assert!(report.commits > 0, "gray seed {seed}: no forward progress");
    }
}

/// Same gray seed => bit-identical verdict: the new retransmit paths
/// (exponential backoff with seeded jitter, hedged re-ships) and the
/// health tracker replay deterministically.
#[test]
fn same_seed_gray_run_is_identical() {
    let cfg = DstConfig {
        seed: 3,
        intensity: Intensity::gray(),
        degradation: Some(DegradationBudget::default()),
        ..Default::default()
    };
    let a = dst::run_seed(&cfg);
    let b = dst::run_seed(&cfg);
    assert_eq!(a, b, "gray replay diverged");
}

/// The bounded-degradation oracle fires when a fault starves the commit
/// path: heavy packet loss for most of the window pushes both commits
/// and commit p99 far outside a tight budget.
#[test]
fn degradation_oracle_detects_starved_commits() {
    let ms = SimDuration::from_millis;
    let cfg = DstConfig {
        window: SimDuration::from_secs(1),
        degradation: Some(DegradationBudget {
            p99_multiple: 1.0,
            p99_floor_ms: 0.01,
            min_commit_fraction: 0.9,
        }),
        ..Default::default()
    };
    let plan = FaultPlan::new().packet_chaos_for(
        ms(100),
        ms(800),
        PacketChaos {
            drop: 0.4,
            duplicate: 0.0,
            delay: 0.2,
            delay_by: ms(5),
        },
    );
    let report = dst::run_plan(&cfg, &plan);
    assert!(
        report.violations.iter().any(|v| matches!(
            v,
            OracleViolation::DegradedCommits { .. } | OracleViolation::DegradedLatency { .. }
        )),
        "heavy loss under a tight budget must trip the degradation oracle: {:?}",
        report.violations
    );
}

/// The health-convergence oracle flags a writer whose gray-failure
/// tracker never clears a suspect (seeded via the frozen-health hook —
/// the decay/clear path is disabled, as a bookkeeping bug would).
#[test]
fn health_oracle_detects_lingering_suspects() {
    let cfg = DstConfig::default();
    let (mut c, _) = cluster_with_load(&cfg, 10);
    c.sim
        .actor_mut::<EngineActor>(c.engine)
        .test_taint_health(SegmentId::new(PgId(0), 0));
    assert!(c.sim.actor::<EngineActor>(c.engine).suspect_count() > 0);

    let mut oracles = Oracles::new();
    let violations = dst::await_convergence(&mut c, SimDuration::from_secs(2), &mut oracles);
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, OracleViolation::SuspectsLinger { count } if *count > 0)),
        "a suspect that never clears must fail health convergence: {violations:?}"
    );
}

/// Repeated read nacks from one storage node route retries away from it:
/// every nack is answered by a retry on a different replica (the reads
/// all still commit), each nack strikes the node's health entry, and a
/// writer that already knows a segment is unhealthy avoids it entirely.
#[test]
fn read_nacks_route_retries_away_from_bad_replica() {
    let cfg = DstConfig {
        seed: 5,
        ..Default::default()
    };
    let (mut c, _) = cluster_with_load(&cfg, 15);
    // Every storage node nacks except the last: any fetch that does not
    // start on the good node is forced through the nack -> strike ->
    // retry-elsewhere loop until it lands there. (A single nacking node
    // would make the test hinge on the RNG picking it first.)
    let good = *c.storage.last().unwrap();
    let victim = c.storage[0];
    for node in c.storage.clone() {
        if node != good {
            c.sim.actor_mut::<StorageNode>(node).test_nack_reads(true);
        }
    }

    // Cold-cache the writer so Gets must fetch pages from storage.
    let recycle = |c: &mut Cluster| {
        c.sim.crash(c.engine);
        c.sim.run_for(SimDuration::from_millis(100));
        c.sim.restart(c.engine);
        for _ in 0..200 {
            c.sim.run_for(SimDuration::from_millis(50));
            if c.sim.actor::<EngineActor>(c.engine).status() == EngineStatus::Ready {
                return;
            }
        }
        panic!("writer never recovered");
    };
    recycle(&mut c);

    // Phase 1: fetches that land on the nacking node get retried
    // elsewhere — retry and strike counts match the nacks exactly.
    let nacks0 = c.sim.metrics.counter_total("engine.read_nacks");
    let retries0 = c.sim.metrics.counter_total("engine.read_retries");
    let strikes0 = c.sim.metrics.counter_total("engine.health_strikes");
    for k in 0..cfg.keys {
        c.submit(conn_of(k, 800_000), TxnSpec::single(Op::Get(k)));
    }
    c.sim.run_for(SimDuration::from_millis(500));
    let nacks = c.sim.metrics.counter_total("engine.read_nacks") - nacks0;
    let retries = c.sim.metrics.counter_total("engine.read_retries") - retries0;
    let strikes = c.sim.metrics.counter_total("engine.health_strikes") - strikes0;
    assert!(
        nacks > 0,
        "seed 5 must land at least one read on the nacker"
    );
    assert_eq!(retries, nacks, "every nack must be answered by a retry");
    assert_eq!(strikes, nacks, "every nack must strike the node's health");
    let rs = c.responses();
    for k in 0..cfg.keys {
        let resp = rs.iter().find(|r| r.conn == conn_of(k, 800_000));
        assert!(
            matches!(resp.map(|r| &r.result), Some(TxnResult::Committed(_))),
            "key {k}: read must succeed despite the nacking replica"
        );
    }

    // Phase 2: a writer that already believes a node is degraded never
    // sends it a read in the first place (restart clears the cache again;
    // the taint hook reinstates the health verdict the nacks had built).
    // Only the victim keeps nacking — everyone else heals.
    for node in c.storage.clone() {
        if node != victim {
            c.sim.actor_mut::<StorageNode>(node).test_nack_reads(false);
        }
    }
    recycle(&mut c);
    let hosted = c.sim.actor::<StorageNode>(victim).hosted();
    for seg in &hosted {
        c.sim
            .actor_mut::<EngineActor>(c.engine)
            .test_taint_health(*seg);
        assert_eq!(
            c.sim.actor::<EngineActor>(c.engine).health_state(*seg),
            HealthState::Degraded
        );
    }
    let rejected0 = c.sim.metrics.counter(victim, "storage.read_rejected");
    for k in 0..cfg.keys {
        c.submit(conn_of(k, 810_000), TxnSpec::single(Op::Get(k)));
    }
    c.sim.run_for(SimDuration::from_millis(500));
    let rejected = c.sim.metrics.counter(victim, "storage.read_rejected") - rejected0;
    assert_eq!(
        rejected, 0,
        "no read may reach a node the writer already marks degraded"
    );
    let rs = c.responses();
    for k in 0..cfg.keys {
        let resp = rs.iter().find(|r| r.conn == conn_of(k, 810_000));
        assert!(
            matches!(resp.map(|r| &r.result), Some(TxnResult::Committed(_))),
            "key {k}: read must succeed while avoiding the degraded node"
        );
    }
}

// ------------------------------------------------------ repair lifecycle

/// Regression for the stuck-repair bug: a donor crash mid-repair no
/// longer wedges the PG — the deadline requeues the job onto a new donor,
/// the PG converges, and the crashed donor is reclaimed as a spare once
/// it comes back.
#[test]
fn repair_survives_donor_crash() {
    let cfg = DstConfig::default(); // repair_timeout = Some(400ms)
    let (mut c, _) = cluster_with_load(&cfg, 10);
    let control_id = c.control.expect("DST clusters run a control plane");

    let victim = c.storage[0];
    c.sim.crash(victim);
    let (donor, replacement) =
        await_repair_job(&mut c, control_id).expect("control never started a repair");
    // the donor dies mid-copy (and takes the half-installed replacement
    // with it, so the copy can't complete either way)
    c.sim.crash(donor);
    c.sim.crash(replacement);

    // deadlines fire, jobs requeue onto live donors/spares, repairs drain
    let mut requeued = 0;
    for _ in 0..400 {
        c.sim.run_for(SimDuration::from_millis(50));
        let control = c.sim.actor::<ControlPlane>(control_id);
        requeued = control.repairs_requeued;
        if requeued >= 1 && control.in_repair_count() == 0 {
            break;
        }
    }
    assert!(requeued >= 1, "the orphaned job must have been requeued");

    // everyone that died comes back; ex-members that host nothing in the
    // new memberships are reclaimed into the spare pool (the leak fix)
    c.sim.restart(victim);
    c.sim.restart(donor);
    c.sim.restart(replacement);
    let mut converged = false;
    for _ in 0..400 {
        c.sim.run_for(SimDuration::from_millis(50));
        let control = c.sim.actor::<ControlPlane>(control_id);
        if control.in_repair_count() == 0
            && control.spares_reclaimed >= 1
            && Oracles::check_convergence(&c).is_empty()
        {
            converged = true;
            break;
        }
    }
    assert!(
        converged,
        "PG must converge and ex-members be reclaimed after a donor crash; \
         violations: {:?}, reclaimed: {}",
        Oracles::check_convergence(&c),
        c.sim.actor::<ControlPlane>(control_id).spares_reclaimed,
    );
}

/// Run until the control plane has a repair job in flight, polling at
/// 1ms so the job is caught before the copy completes. Returns the
/// job's (donor, replacement).
fn await_repair_job(c: &mut Cluster, control_id: u32) -> Option<(u32, u32)> {
    for _ in 0..2000 {
        c.sim.run_for(SimDuration::from_millis(1));
        let jobs = c.sim.actor::<ControlPlane>(control_id).repair_jobs();
        if let Some((_, donor, replacement)) = jobs.first() {
            return Some((*donor, *replacement));
        }
    }
    None
}

// --------------------------------------------------------------- shrink

/// A failing schedule shrinks to a minimal reproducer: only the fatal
/// entry (a permanent kill with no spare to replace it) survives ddmin.
#[test]
fn failing_schedule_shrinks_to_minimal_reproducer() {
    let cfg = DstConfig {
        seed: 13,
        spares: 0,
        window: SimDuration::from_secs(1),
        converge_budget: SimDuration::from_secs(2),
        ..Default::default()
    };
    let ms = SimDuration::from_millis;
    // one fatal entry buried in transient noise that heals on its own
    let plan = FaultPlan::new()
        .crash_for(ms(50), ms(100), 2)
        .at(ms(300), FaultAction::Crash(1))
        .packet_chaos_for(
            ms(400),
            ms(150),
            PacketChaos {
                drop: 0.05,
                duplicate: 0.0,
                delay: 0.1,
                delay_by: SimDuration::from_millis(1),
            },
        )
        .crash_for(ms(600), ms(100), 4);
    let report = dst::run_plan(&cfg, &plan);
    assert!(!report.passed(), "the seeded kill must fail convergence");

    // ddmin may legally isolate either the seeded kill or a kill it
    // creates by stripping a crash_for's restart — both are minimal
    // one-entry reproducers
    let minimal = dst::shrink_failing(&cfg, &plan);
    assert_eq!(
        minimal.entries().len(),
        1,
        "shrink should isolate a single fatal entry: {}",
        dst::format_plan(&minimal)
    );
    assert!(
        matches!(minimal.entries()[0].1, FaultAction::Crash(_)),
        "wrong surviving entry: {}",
        dst::format_plan(&minimal)
    );
    assert!(
        !dst::run_plan(&cfg, &minimal).passed(),
        "the minimal plan must still reproduce the failure"
    );
}

/// Golden digests captured on the pre-timer-wheel kernel (global
/// `BinaryHeap` scheduler, PR 8 baseline): moderate-intensity runs of ten
/// seeds, digested as (commits, final simulated clock). The final clock is
/// the strongest cheap witness of the event order — any scheduler that
/// reorders even one pair of same-timestamp events shifts it. The
/// timer-wheel kernel must reproduce these bytes exactly; a legitimate
/// behavioral change (new engine feature, retuned timer) updates this
/// table knowingly, a scheduler bug does not get to.
#[test]
fn kernel_scheduler_swap_preserves_golden_digests() {
    const GOLDEN: &[(u64, u64, u64)] = &[
        // (seed, commits, clock_ns) — captured pre-swap
        (0, 871, 5_351_000_000),
        (1, 852, 5_351_000_000),
        (2, 852, 5_351_000_000),
        (3, 1168, 5_351_000_000),
        (5, 1212, 5_351_000_000),
        (7, 816, 5_351_000_000),
        (11, 648, 5_351_000_000),
        (17, 1115, 5_351_000_000),
        (23, 672, 5_351_000_000),
        (42, 630, 5_351_000_000),
    ];
    for &(seed, commits, clock_ns) in GOLDEN {
        let report = dst::run_seed(&DstConfig {
            seed,
            ..Default::default()
        });
        assert!(report.passed(), "seed {seed}: {:?}", report.violations);
        assert_eq!(
            (report.commits, report.clock_ns),
            (commits, clock_ns),
            "seed {seed}: digest diverged from the pre-swap golden"
        );
    }
}

/// The worker pool is pure scheduling: sweeping the same seeds with
/// `jobs = 1` (inline) and `jobs = 4` (threaded) must produce identical
/// reports — including full trace dumps, which `DstReport`'s `PartialEq`
/// compares byte-for-byte — in the same seed order.
#[test]
fn parallel_sweep_report_is_bit_identical_to_sequential() {
    use aurora::bench::sweep;

    let seeds: Vec<u64> = vec![0, 1, 2, 3, 5, 7, 11, 17];
    let run = |jobs: usize| -> Vec<dst::DstReport> {
        sweep::parallel_map(
            &seeds,
            jobs,
            |&seed| {
                dst::run_seed(&DstConfig {
                    seed,
                    // Trace two of the seeds so the comparison covers the
                    // rendered Chrome/NDJSON/watermark artifacts too.
                    trace: seed == 5 || seed == 7,
                    ..Default::default()
                })
            },
            |_, _| {},
        )
    };
    let sequential = run(1);
    let parallel = run(4);
    assert!(
        sequential.iter().any(|r| r.trace.is_some()),
        "traced seeds must carry dumps for the byte comparison to bite"
    );
    assert_eq!(
        sequential, parallel,
        "parallel sweep diverged from sequential"
    );
}
