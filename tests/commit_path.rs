//! Commit-path regression tests for the adaptive group-commit work: the
//! flush-timer armed-guard (no doubled cadence across failover), ack
//! latency attribution under packet chaos (retransmits must not smear the
//! histogram, duplicated acks must not inflate it), the adaptive policy's
//! idle-pipe fast path, and bit-identical replay of the new timer logic.

use aurora::core::cluster::{Cluster, ClusterConfig};
use aurora::core::engine::{EngineActor, EngineStatus, ShipPolicy};
use aurora::core::wire::{Op, Promote, TxnResult, TxnSpec};
use aurora::log::{Lsn, PgId, SegmentId};
use aurora::quorum::VolumeEpoch;
use aurora::sim::{FaultPlan, PacketChaos, SimDuration};

fn value_of(version: u64) -> Vec<u8> {
    let mut v = vec![0u8; 16];
    v[..8].copy_from_slice(&version.to_le_bytes());
    v[8..16].copy_from_slice(&version.wrapping_mul(0x2545_F491_4F6C_DD1D).to_le_bytes());
    v
}

/// Regression for the double-armed flush timer: Start, Restarted and
/// Promote each used to arm TAG_FLUSH unconditionally, so a writer that
/// was fenced to standby and promoted back ran **two** periodic flush
/// chains — double the tick cadence, different batching per seed. The
/// armed-guard must keep the cadence flat across the fence/promote cycle.
#[test]
fn promote_after_fence_does_not_double_arm_the_flush_timer() {
    let mut c = Cluster::build_with(ClusterConfig::default(), |e| {
        e.ship_policy = ShipPolicy::FixedInterval;
    });
    c.sim.run_for(SimDuration::from_millis(300));
    assert_eq!(
        c.sim.actor::<EngineActor>(c.engine).status(),
        EngineStatus::Ready
    );

    let ticks_over_100ms = |c: &mut Cluster| {
        let before = c.sim.metrics.counter_total("engine.flush_ticks");
        c.sim.run_for(SimDuration::from_millis(100));
        c.sim.metrics.counter_total("engine.flush_ticks") - before
    };
    let baseline = ticks_over_100ms(&mut c);
    assert!(baseline > 0, "fixed-interval flush timer must tick");

    // a newer writer owns the volume: fence this one down to standby (its
    // periodic flush chain keeps ticking — the timer outlives the status)
    c.sim.tell(
        c.engine,
        aurora::storage::wire::WriteFenced {
            segment: SegmentId::new(PgId(0), 0),
            batch_end: Lsn(0),
            epoch: VolumeEpoch(7),
        },
    );
    c.sim.run_for(SimDuration::from_millis(5));
    assert_eq!(
        c.sim.actor::<EngineActor>(c.engine).status(),
        EngineStatus::Standby
    );

    // ... and promote it back: pre-guard this armed a second chain
    c.sim.tell(c.engine, Promote);
    let mut ready = false;
    for _ in 0..400 {
        c.sim.run_for(SimDuration::from_millis(10));
        if c.sim.actor::<EngineActor>(c.engine).status() == EngineStatus::Ready {
            ready = true;
            break;
        }
    }
    assert!(ready, "promoted writer must recover to Ready");

    let after = ticks_over_100ms(&mut c);
    assert!(
        after <= baseline + baseline / 10,
        "flush cadence grew after fence/promote (double-armed timer): \
         {baseline} ticks/100ms before, {after} after"
    );
    assert!(
        after + baseline / 10 >= baseline,
        "flush chain died across fence/promote: {baseline} -> {after}"
    );
}

/// Ack-latency attribution under packet chaos. Two invariants:
///
/// * a retransmitted batch attributes its late acks to the send that
///   plausibly elicited them (`last_sent`), not the original ship —
///   otherwise every network-loss retry smears a 15ms+ outlier into the
///   commit-path histogram;
/// * duplicated acks (chaos copies, retransmit-regenerated acks) record
///   **nothing**: at most one `engine.ack_ns` sample per (batch, pg,
///   replica) send, so the histogram count never exceeds the original
///   send count.
#[test]
fn ack_latency_attribution_survives_drops_and_duplicates() {
    let mut c = Cluster::build(ClusterConfig {
        seed: 99,
        bootstrap_rows: 0,
        ..Default::default()
    });
    c.sim.run_for(SimDuration::from_millis(300));
    let ms = SimDuration::from_millis;
    let plan = FaultPlan::new().packet_chaos_for(
        ms(10),
        ms(1500),
        PacketChaos {
            drop: 0.25,
            duplicate: 0.25,
            delay: 0.20,
            delay_by: ms(2),
        },
    );
    c.sim.install_fault_plan(&plan);

    let mut conn = 0u64;
    for round in 0..75u64 {
        for k in 0..8u64 {
            conn += 1;
            c.submit(conn, TxnSpec::single(Op::Upsert(k, value_of(round + 1))));
        }
        c.sim.run_for(ms(20));
    }
    c.sim.run_for(SimDuration::from_secs(2));

    assert!(
        c.sim.net().chaos_duplicated > 0,
        "packet duplication must have fired"
    );
    let retransmits = c.sim.metrics.counter_total("engine.log_write_retransmits");
    assert!(retransmits > 0, "drops must have forced retransmissions");

    let ack = c.sim.metrics.histogram_total("engine.ack_ns");
    let sends = c.sim.metrics.counter_total("engine.log_write_ios");
    assert!(ack.count() > 0, "acks must have been recorded");
    assert!(
        ack.count() <= sends,
        "more ack samples ({}) than original sends ({sends}): \
         a duplicated or regenerated ack was recorded twice",
        ack.count()
    );
    // The retransmit deadline is 15ms (sweeped every 5ms): an ack
    // attributed to the send that elicited it stays far below that, while
    // first-ship attribution would record the full 15ms+ retry gap.
    let bound = SimDuration::from_millis(10).nanos();
    assert!(
        ack.max() < bound,
        "ack {}us recorded against a stale ship time (retransmit smear)",
        ack.max() / 1_000
    );
}

/// The adaptive policy's reason for existing: an idle pipe ships a lone
/// commit immediately instead of waiting out the group-commit deadline.
/// With a deliberately huge flush interval the difference is stark.
#[test]
fn adaptive_policy_ships_idle_commits_without_deadline_wait() {
    fn lone_commit_latency_ns(policy: ShipPolicy) -> u64 {
        let mut c = Cluster::build_with(
            ClusterConfig {
                seed: 7,
                bootstrap_rows: 0,
                ..Default::default()
            },
            move |e| {
                e.ship_policy = policy;
                e.flush_interval = SimDuration::from_millis(20);
            },
        );
        c.sim.run_for(SimDuration::from_millis(300));
        c.submit(1, TxnSpec::single(Op::Upsert(1, value_of(1))));
        c.sim.run_for(SimDuration::from_millis(100));
        let rs = c.responses();
        let resp = rs.first().expect("commit response");
        assert!(matches!(resp.result, TxnResult::Committed(_)));
        let h = c.sim.metrics.histogram_total("engine.commit_ns");
        assert_eq!(h.count(), 1);
        h.max()
    }

    let fixed = lone_commit_latency_ns(ShipPolicy::FixedInterval);
    let adaptive = lone_commit_latency_ns(ShipPolicy::Adaptive);
    assert!(
        fixed > SimDuration::from_millis(5).nanos(),
        "fixed-interval lone commit should wait on the 20ms deadline, took {}us",
        fixed / 1_000
    );
    assert!(
        adaptive < SimDuration::from_millis(5).nanos(),
        "adaptive lone commit must ship immediately, took {}us",
        adaptive / 1_000
    );
    assert!(
        adaptive * 4 < fixed,
        "adaptive ({adaptive}ns) should be far below fixed ({fixed}ns)"
    );
}

/// Same seed => bit-identical run under the **adaptive** policy with a
/// pipeline depth of 1 — the configuration that maximally exercises the
/// new timer logic (immediate ships, deadline arms, ack-drain re-flushes,
/// timer cancels). Both ship reasons must actually fire, and every
/// per-node counter must replay exactly.
#[test]
fn adaptive_timer_logic_replays_bit_identically() {
    type Digest = (Vec<(u32, String, u64)>, u64, u64, u64, u64, u64);
    fn run() -> Digest {
        let mut c = Cluster::build_with(
            ClusterConfig {
                seed: 512,
                bootstrap_rows: 0,
                ..Default::default()
            },
            |e| {
                e.ship_policy = ShipPolicy::Adaptive;
                e.ship_pipeline_depth = 1;
            },
        );
        c.sim.run_for(SimDuration::from_millis(300));
        let mut conn = 0u64;
        for round in 0..40u64 {
            for k in 0..16u64 {
                conn += 1;
                c.submit(conn, TxnSpec::single(Op::Upsert(k, value_of(round + 1))));
            }
            c.sim.run_for(SimDuration::from_millis(5));
        }
        c.sim.run_for(SimDuration::from_secs(1));
        let counters: Vec<(u32, String, u64)> = c
            .sim
            .metrics
            .counters_snapshot()
            .into_iter()
            .map(|(o, n, v)| (o, n.to_string(), v))
            .collect();
        (
            counters,
            c.sim.metrics.counter_total("engine.commits"),
            c.sim.metrics.counter_total("engine.ship_immediate"),
            c.sim.metrics.counter_total("engine.ship_deadline"),
            c.sim.net().packets,
            c.sim.now().nanos(),
        )
    }

    let a = run();
    let b = run();
    assert!(a.1 > 0, "workload must commit");
    assert!(a.2 > 0, "immediate ships must fire (idle-pipe path)");
    assert!(a.3 > 0, "deadline ships must fire (full-pipe path)");
    assert_eq!(a, b, "adaptive timer logic diverged between same-seed runs");
}
