//! Chaos test: a seeded storm of failures — storage-node crashes and
//! restarts, AZ flaps, writer crashes with recovery — under continuous
//! writes, with a consistency checker.
//!
//! Each key is owned by one logical client that writes strictly
//! sequentially (it submits version v+1 only after version v was
//! acknowledged or aborted), so the expected final state of a key is
//! well-defined: **at least the last acknowledged version, possibly a
//! later unacknowledged one, never anything older** — the §2 contract
//! ("data, once written, can be read") plus the no-false-ack property.

use aurora::core::cluster::{Cluster, ClusterConfig};
use aurora::core::engine::{EngineActor, EngineStatus};
use aurora::core::wire::{Op, OpResult, TxnResult, TxnSpec};
use aurora::sim::{SimDuration, SimRng, Zone};

const KEYS: u64 = 24;

/// Version v of key k encodes both in the row for verification.
fn value_of(version: u64) -> Vec<u8> {
    let mut v = vec![0u8; 16];
    v[..8].copy_from_slice(&version.to_le_bytes());
    v[8..16].copy_from_slice(&version.wrapping_mul(0x2545_F491_4F6C_DD1D).to_le_bytes());
    v
}

fn decode_version(row: &[u8]) -> u64 {
    u64::from_le_bytes(row[..8].try_into().unwrap())
}

#[test]
fn committed_data_survives_a_failure_storm() {
    let mut c = Cluster::build(ClusterConfig {
        seed: 4242,
        pgs: 2,
        pages_per_pg: 100_000,
        storage_nodes: 6,
        bootstrap_rows: 0,
        ..Default::default()
    });
    c.sim.run_for(SimDuration::from_millis(300));

    // conn encoding: key * 1_000_000 + version
    let conn_of = |key: u64, version: u64| key * 1_000_000 + version;

    // per-key progress: next version to submit, last ACKED version
    let mut next_version = vec![1u64; KEYS as usize];
    let mut last_acked = vec![0u64; KEYS as usize];
    let mut in_flight = vec![false; KEYS as usize];
    let mut rng = SimRng::new(777);

    let mut down_storage: Vec<u32> = Vec::new();
    for round in 0..120 {
        // keep one write in flight per key
        for k in 0..KEYS {
            if !in_flight[k as usize] {
                let v = next_version[k as usize];
                c.submit(conn_of(k, v), TxnSpec::single(Op::Upsert(k, value_of(v))));
                in_flight[k as usize] = true;
            }
        }

        // a random calamity every few rounds
        match rng.index(10) {
            0
                // crash a random storage node (keep at least 4 up so the
                // storm makes progress; quorum math is tested elsewhere)
                if down_storage.len() < 2 => {
                    let pick = c.storage[rng.index(c.storage.len())];
                    if !down_storage.contains(&pick) {
                        c.sim.crash(pick);
                        down_storage.push(pick);
                    }
                }
            1 => {
                if let Some(node) = down_storage.pop() {
                    c.sim.restart(node);
                }
            }
            2 => {
                // brief AZ flap (restores immediately next round)
                let zone = Zone(rng.index(3) as u8);
                let dz = down_storage.clone();
                c.sim.zone_down(zone);
                c.sim.run_for(SimDuration::from_millis(30));
                c.sim.zone_up(zone);
                // nodes we deliberately hold down stay down
                for n in dz {
                    c.sim.crash(n);
                }
            }
            3 if round % 20 == 10 => {
                // writer crash + recovery mid-storm
                c.sim.crash(c.engine);
                c.sim.run_for(SimDuration::from_millis(20));
                c.sim.restart(c.engine);
                let mut guard = 0;
                while c.sim.actor::<EngineActor>(c.engine).status() != EngineStatus::Ready {
                    c.sim.run_for(SimDuration::from_millis(10));
                    guard += 1;
                    assert!(guard < 50_000, "recovery stuck during storm");
                }
            }
            _ => {}
        }
        c.sim.run_for(SimDuration::from_millis(25));

        // absorb responses
        for resp in c.responses() {
            let key = resp.conn / 1_000_000;
            let version = resp.conn % 1_000_000;
            if version != next_version[key as usize] {
                continue; // already processed (responses() is cumulative)
            }
            in_flight[key as usize] = false;
            match resp.result {
                TxnResult::Committed(_) => {
                    last_acked[key as usize] = version;
                    next_version[key as usize] = version + 1;
                }
                TxnResult::Aborted(_) => {
                    // retry the same version with a fresh conn id: bump the
                    // version space instead to keep conn ids unique, but
                    // remember acked stays behind
                    next_version[key as usize] = version + 1;
                }
            }
        }
    }

    // heal the world and drain
    for n in down_storage {
        c.sim.restart(n);
    }
    if c.sim.actor::<EngineActor>(c.engine).status() != EngineStatus::Ready {
        let mut guard = 0;
        while c.sim.actor::<EngineActor>(c.engine).status() != EngineStatus::Ready {
            c.sim.run_for(SimDuration::from_millis(10));
            guard += 1;
            assert!(guard < 50_000);
        }
    }
    c.sim.run_for(SimDuration::from_secs(3));
    // absorb any stragglers
    for resp in c.responses() {
        let key = resp.conn / 1_000_000;
        let version = resp.conn % 1_000_000;
        if let TxnResult::Committed(_) = resp.result {
            if version > last_acked[key as usize] && version < 900_000 {
                last_acked[key as usize] = version.max(last_acked[key as usize]);
            }
        }
    }

    let total_acked: u64 = last_acked.iter().sum();
    assert!(total_acked > 0, "the storm must have allowed some progress");

    // verify: every key reads at a version >= its last acked version
    for k in 0..KEYS {
        c.submit(conn_of(k, 900_000), TxnSpec::single(Op::Get(k)));
    }
    c.sim.run_for(SimDuration::from_secs(3));
    let rs = c.responses();
    for k in 0..KEYS {
        let resp = rs
            .iter()
            .find(|r| r.conn == conn_of(k, 900_000))
            .unwrap_or_else(|| panic!("no read response for key {k}"));
        let acked = last_acked[k as usize];
        match &resp.result {
            TxnResult::Committed(results) => match &results[0] {
                OpResult::Row(Some(row)) => {
                    let got = decode_version(row);
                    assert!(
                        got >= acked,
                        "key {k}: read version {got} older than acked {acked}"
                    );
                    // integrity: the checksum half matches the version
                    assert_eq!(
                        &row[8..16],
                        &got.wrapping_mul(0x2545_F491_4F6C_DD1D).to_le_bytes(),
                        "key {k}: torn row"
                    );
                }
                OpResult::Row(None) => {
                    assert_eq!(acked, 0, "key {k}: acked version {acked} lost entirely");
                }
                other => panic!("key {k}: {other:?}"),
            },
            TxnResult::Aborted(m) => panic!("final read of key {k} failed: {m}"),
        }
    }
}

/// The PR's acceptance scenario: a chaos storm — storage-node crash, an
/// AZ network partition, a degraded disk, and drop/delay/duplicate packet
/// chaos — expressed **declaratively** as a [`FaultPlan`] and executed by
/// the DES scheduler. With the same cluster seed and the same plan, two
/// runs must replay **bit-for-bit**: identical client responses in
/// identical order, identical packet and byte counts, identical clock.
#[test]
fn fault_plan_chaos_replays_identically_from_seed() {
    use aurora::sim::fault::{FaultPlan, PacketChaos};
    use aurora::sim::sim::DiskSpec;

    type ChaosDigest = (
        Vec<(u64, bool)>,
        u64,
        u64,
        u64,
        u64,
        u64,
        Vec<(u32, String, u64)>,
    );

    fn run() -> ChaosDigest {
        let mut c = Cluster::build(ClusterConfig {
            seed: 2026,
            pgs: 2,
            pages_per_pg: 50_000,
            storage_nodes: 6,
            bootstrap_rows: 0,
            ..Default::default()
        });
        c.sim.run_for(SimDuration::from_millis(300));
        let ms = SimDuration::from_millis;
        let victim = c.storage[1];
        let sluggish = c.storage[3];
        let plan = FaultPlan::new()
            .crash_for(ms(50), ms(120), victim)
            .partition_zone_for(ms(150), ms(80), Zone(2))
            .degrade_disk_for(ms(100), ms(300), sluggish, DiskSpec::ebs_provisioned(200))
            .packet_chaos_for(
                ms(20),
                ms(400),
                PacketChaos {
                    drop: 0.02,
                    duplicate: 0.05,
                    delay: 0.10,
                    delay_by: ms(2),
                },
            );
        c.sim.install_fault_plan(&plan);

        let mut conn = 0u64;
        for round in 0..30u64 {
            for k in 0..8u64 {
                conn += 1;
                c.submit(conn, TxnSpec::single(Op::Upsert(k, value_of(round + 1))));
            }
            c.sim.run_for(ms(20));
        }
        c.sim.run_for(SimDuration::from_secs(2));
        assert_eq!(c.sim.pending_faults(), 0, "whole plan executed");

        let responses: Vec<(u64, bool)> = c
            .responses()
            .iter()
            .map(|r| (r.conn, matches!(r.result, TxnResult::Committed(_))))
            .collect();
        // every per-node counter, sorted by (owner, name): any divergence
        // in per-node work — not just the aggregate — fails the replay
        let counters: Vec<(u32, String, u64)> = c
            .sim
            .metrics
            .counters_snapshot()
            .into_iter()
            .map(|(o, n, v)| (o, n.to_string(), v))
            .collect();
        (
            responses,
            c.sim.metrics.counter_total("engine.commits"),
            c.sim.net().packets,
            c.sim.net().bytes,
            c.sim.net().chaos_duplicated,
            c.sim.now().nanos(),
            counters,
        )
    }

    let a = run();
    let b = run();
    assert!(a.1 > 0, "transactions must commit through the chaos");
    assert!(a.4 > 0, "packet duplication must have fired");
    assert!(!a.6.is_empty(), "counters must have been recorded");
    assert_eq!(a, b, "same seed + same plan must replay identically");
}
