//! Property-based tests on the core data structures and protocol
//! invariants, spanning crates (hence at the workspace root).

use aurora::log::{
    apply_record, codec, unapply_record, LogRecord, Lsn, Page, PageId, Patch, PgId, RecordBody,
    SegmentLog, TxnId, PAGE_SIZE,
};
use aurora::quorum::{AckOutcome, DurabilityTracker, QuorumConfig};
use aurora::sim::Histogram;
use bytes::Bytes;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// codec: every record round-trips; corruption is always detected
// ---------------------------------------------------------------------

fn arb_body() -> impl Strategy<Value = RecordBody> {
    prop_oneof![
        (
            any::<u64>(),
            proptest::collection::vec(
                (0u32..4000, proptest::collection::vec(any::<u8>(), 1..32)),
                1..4
            )
        )
            .prop_map(|(page, raw)| {
                RecordBody::PageWrite {
                    page: PageId(page % 10_000),
                    patches: raw
                        .into_iter()
                        .map(|(offset, bytes)| Patch {
                            offset: offset % (PAGE_SIZE as u32 - 64),
                            before: Bytes::from(vec![0u8; bytes.len()]),
                            after: Bytes::from(bytes),
                        })
                        .collect(),
                }
            }),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(|init| RecordBody::PageFormat {
            page: PageId(3),
            init: Bytes::from(init),
        }),
        Just(RecordBody::TxnBegin),
        Just(RecordBody::TxnCommit),
        Just(RecordBody::TxnAbort),
        proptest::collection::vec(any::<u8>(), 0..48).prop_map(|d| RecordBody::Undo {
            data: Bytes::from(d)
        }),
    ]
}

fn arb_record() -> impl Strategy<Value = LogRecord> {
    (
        1u64..1_000_000,
        any::<u64>(),
        any::<u32>(),
        any::<bool>(),
        arb_body(),
    )
        .prop_map(|(lsn, txn, pg, is_cpl, body)| LogRecord {
            lsn: Lsn(lsn),
            prev_in_pg: Lsn(lsn.saturating_sub(1)),
            pg: PgId(pg % 64),
            txn: TxnId(txn),
            is_cpl,
            body,
        })
}

proptest! {
    #[test]
    fn codec_roundtrip(rec in arb_record()) {
        let buf = codec::encode(&rec);
        let (back, consumed) = codec::decode(&buf).unwrap();
        prop_assert_eq!(consumed, buf.len());
        prop_assert_eq!(back, rec);
    }

    #[test]
    fn codec_detects_any_single_byte_corruption(rec in arb_record(), flip in any::<(usize, u8)>()) {
        let mut buf = codec::encode(&rec);
        let idx = flip.0 % buf.len();
        let bit = flip.1 | 1; // guarantee a real change
        buf[idx] ^= bit;
        // either the CRC catches it, the length field truncates it, or the
        // decoded record differs — silent identical decode is the only
        // forbidden outcome
        match codec::decode(&buf) {
            Err(_) => {}
            Ok((back, _)) => prop_assert_ne!(back, rec),
        }
    }

    #[test]
    fn batch_roundtrip(recs in proptest::collection::vec(arb_record(), 0..16)) {
        let buf = codec::encode_batch(&recs);
        let back = codec::decode_batch(&buf).unwrap();
        prop_assert_eq!(back, recs);
    }
}

// ---------------------------------------------------------------------
// applicator: apply is idempotent-guarded and unapply inverts it
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn apply_then_unapply_is_identity(
        writes in proptest::collection::vec((0u32..((PAGE_SIZE - 32) as u32), proptest::collection::vec(any::<u8>(), 1..24)), 1..12)
    ) {
        let mut page = Page::new();
        let mut records = Vec::new();
        for (i, (offset, bytes)) in writes.iter().enumerate() {
            let patch = Patch::capture(&page, *offset as usize, bytes);
            let rec = LogRecord {
                lsn: Lsn(i as u64 + 1),
                prev_in_pg: Lsn(i as u64),
                pg: PgId(0),
                txn: TxnId(1),
                is_cpl: true,
                body: RecordBody::PageWrite { page: PageId(0), patches: vec![patch] },
            };
            apply_record(&mut page, &rec).unwrap();
            records.push(rec);
        }
        // undo everything newest-first: page returns to all-zeroes
        for rec in records.iter().rev() {
            unapply_record(&mut page, rec).unwrap();
        }
        prop_assert!(page.bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn apply_rejects_stale_records(lsn in 2u64..100) {
        let mut page = Page::new();
        let rec = |l: u64| LogRecord {
            lsn: Lsn(l),
            prev_in_pg: Lsn(l - 1),
            pg: PgId(0),
            txn: TxnId(1),
            is_cpl: true,
            body: RecordBody::PageWrite {
                page: PageId(0),
                patches: vec![Patch {
                    offset: 0,
                    before: Bytes::from_static(&[0]),
                    after: Bytes::from_static(&[1]),
                }],
            },
        };
        apply_record(&mut page, &rec(lsn)).unwrap();
        // anything at or below the page LSN is refused
        prop_assert!(apply_record(&mut page, &rec(lsn)).is_err());
        prop_assert!(apply_record(&mut page, &rec(lsn - 1)).is_err());
    }
}

// ---------------------------------------------------------------------
// segment log: SCL == longest chain prefix, under any arrival order
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn scl_is_arrival_order_independent(
        n in 1usize..60,
        order in proptest::collection::vec(any::<u64>(), 60),
        missing in proptest::collection::hash_set(0usize..60, 0..8)
    ) {
        // chain 1..=n with backlinks i-1; deliver in a scrambled order,
        // skipping `missing`
        let chain: Vec<LogRecord> = (1..=n as u64)
            .map(|l| LogRecord {
                lsn: Lsn(l),
                prev_in_pg: Lsn(l - 1),
                pg: PgId(0),
                txn: TxnId(1),
                is_cpl: true,
                body: RecordBody::TxnBegin,
            })
            .collect();
        let mut idx: Vec<usize> = (0..n).collect();
        // scramble deterministically from `order`
        for i in (1..n).rev() {
            let j = (order[i] as usize) % (i + 1);
            idx.swap(i, j);
        }
        let mut log = SegmentLog::new();
        for &i in &idx {
            if !missing.contains(&i) {
                log.insert(chain[i].clone());
            }
        }
        // expected SCL = first missing index (i.e. chain prefix length)
        let expected = (0..n).take_while(|i| !missing.contains(i)).count() as u64;
        prop_assert_eq!(log.scl(), Lsn(expected));
        // filling the holes completes the chain
        for &i in &idx {
            if missing.contains(&i) {
                log.insert(chain[i].clone());
            }
        }
        prop_assert_eq!(log.scl(), Lsn(n as u64));
    }

    #[test]
    fn truncate_then_reinsert_is_consistent(cut in 1u64..40) {
        let mut log = SegmentLog::new();
        for l in 1..=40u64 {
            log.insert(LogRecord {
                lsn: Lsn(l),
                prev_in_pg: Lsn(l - 1),
                pg: PgId(0),
                txn: TxnId(1),
                is_cpl: true,
                body: RecordBody::TxnBegin,
            });
        }
        log.truncate_above(Lsn(cut));
        prop_assert_eq!(log.scl(), Lsn(cut));
        prop_assert_eq!(log.len() as u64, cut);
        // a new history reusing the annulled LSNs chains on cleanly
        for l in (cut + 1)..=(cut + 5) {
            log.insert(LogRecord {
                lsn: Lsn(l),
                prev_in_pg: Lsn(l - 1),
                pg: PgId(0),
                txn: TxnId(2),
                is_cpl: true,
                body: RecordBody::TxnCommit,
            });
        }
        prop_assert_eq!(log.scl(), Lsn(cut + 5));
    }
}

// ---------------------------------------------------------------------
// durability tracker: VDL advances monotonically, never past acks
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn vdl_monotone_and_bounded(acks in proptest::collection::vec((0u64..20, 0u8..6), 0..200)) {
        let mut t = DurabilityTracker::new(QuorumConfig::aurora(), Lsn::ZERO);
        let batch_ends: Vec<Lsn> = (1..=20u64).map(|i| Lsn(i * 10)).collect();
        for end in &batch_ends {
            t.register(*end, Some(*end), &[PgId(0)]);
        }
        let mut last_vdl = Lsn::ZERO;
        for (batch, replica) in acks {
            let end = batch_ends[(batch % 20) as usize];
            if let AckOutcome::VdlAdvanced(v) = t.ack(end, PgId(0), replica) {
                prop_assert!(v >= last_vdl, "VDL went backwards");
                last_vdl = v;
            }
            // the durable prefix never exceeds the highest fully-acked point
            prop_assert!(t.vdl() <= Lsn(200));
            prop_assert_eq!(t.vdl(), t.durable_to());
        }
    }
}

// ---------------------------------------------------------------------
// histogram: quantiles are order statistics within the error bound
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn histogram_quantile_error_bounded(values in proptest::collection::vec(1u64..1_000_000_000, 1..500)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.5f64, 0.95, 0.99] {
            let approx = h.quantile(q) as f64;
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1] as f64;
            let err = (approx - exact).abs() / exact.max(1.0);
            prop_assert!(err < 0.15, "q={q}: approx {approx} exact {exact} err {err}");
        }
        prop_assert_eq!(h.min(), *sorted.first().unwrap());
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
        prop_assert_eq!(h.count(), values.len() as u64);
    }
}

// ---------------------------------------------------------------------
// quorum config: generated configs satisfying Gifford's rules always
// tolerate what they claim
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn valid_quorums_intersect(copies in 1u8..12, write in 1u8..12, read in 1u8..12) {
        let cfg = QuorumConfig {
            copies,
            write_quorum: write,
            read_quorum: read,
            azs: 1,
            copies_per_az: copies,
        };
        if cfg.validate().is_ok() {
            // any write set of size Vw and read set of size Vr intersect
            prop_assert!(read as u16 + write as u16 > copies as u16);
            // two write sets intersect (no split brain)
            prop_assert!(2 * write as u16 > copies as u16);
        }
    }
}

// ---------------------------------------------------------------------
// B+-tree vs a BTreeMap model, under random operation sequences
// ---------------------------------------------------------------------

use aurora::core::btree::{BTree, MemProvider, TreeMeta};

#[derive(Debug, Clone)]
enum TreeOp {
    Insert(u64, u8),
    Update(u64, u8),
    Delete(u64),
    Get(u64),
    Scan(u64, usize),
}

fn arb_tree_op() -> impl Strategy<Value = TreeOp> {
    prop_oneof![
        (0u64..200, any::<u8>()).prop_map(|(k, v)| TreeOp::Insert(k, v)),
        (0u64..200, any::<u8>()).prop_map(|(k, v)| TreeOp::Update(k, v)),
        (0u64..200).prop_map(TreeOp::Delete),
        (0u64..200).prop_map(TreeOp::Get),
        (0u64..200, 0usize..20).prop_map(|(k, n)| TreeOp::Scan(k, n)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn btree_matches_model(ops in proptest::collection::vec(arb_tree_op(), 1..300)) {
        const ROW: usize = 24;
        let tree = BTree::new(TreeMeta::for_row_size(ROW, PageId(0)));
        let mut p = MemProvider::new();
        tree.create(&mut p).unwrap();
        let mut model = std::collections::BTreeMap::<u64, Vec<u8>>::new();
        let row = |v: u8| vec![v; ROW];
        for op in ops {
            match op {
                TreeOp::Insert(k, v) => {
                    let r = tree.insert(&mut p, k, &row(v));
                    if let std::collections::btree_map::Entry::Vacant(e) = model.entry(k) {
                        prop_assert!(r.is_ok());
                        e.insert(row(v));
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
                TreeOp::Update(k, v) => {
                    let r = tree.update(&mut p, k, &row(v));
                    if let std::collections::btree_map::Entry::Occupied(mut e) = model.entry(k) {
                        prop_assert!(r.is_ok());
                        e.insert(row(v));
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
                TreeOp::Delete(k) => {
                    let r = tree.delete(&mut p, k);
                    prop_assert_eq!(r.is_ok(), model.remove(&k).is_some());
                }
                TreeOp::Get(k) => {
                    prop_assert_eq!(tree.get(&mut p, k).unwrap(), model.get(&k).cloned());
                }
                TreeOp::Scan(k, n) => {
                    let got = tree.scan(&mut p, k, n).unwrap();
                    let expect: Vec<(u64, Vec<u8>)> = model
                        .range(k..)
                        .take(n)
                        .map(|(k, v)| (*k, v.clone()))
                        .collect();
                    prop_assert_eq!(got, expect);
                }
            }
        }
        // the patch journal replays to the exact same page images
        let mut replay: std::collections::HashMap<PageId, Page> = Default::default();
        for (pid, patches) in &p.journal {
            let page = replay.entry(*pid).or_default();
            for (off, _before, after) in patches {
                page.write_range(*off as usize, after);
            }
        }
        for (pid, page) in &p.pages {
            prop_assert_eq!(replay.entry(*pid).or_default().bytes(), page.bytes());
        }
    }
}
