//! Workspace-level end-to-end tests: whole-system scenarios that cross
//! every crate, including Aurora-vs-baseline comparisons on identical
//! workloads and failure scripts that the per-crate suites don't cover.

use aurora::baseline::{MysqlCluster, MysqlClusterConfig};
use aurora::core::cluster::{Cluster, ClusterConfig};
use aurora::core::engine::{EngineActor, EngineStatus};
use aurora::core::wire::{Op, OpResult, TxnResult, TxnSpec};
use aurora::sim::{SimDuration, Zone};
use aurora::storage::ObjectStore;

fn row_of(resp: &aurora::core::wire::ClientResponse) -> Option<Vec<u8>> {
    match &resp.result {
        TxnResult::Committed(rs) => match &rs[0] {
            OpResult::Row(r) => r.clone(),
            _ => None,
        },
        TxnResult::Aborted(m) => panic!("abort: {m}"),
    }
}

/// The same transaction history against both stacks produces the same
/// final database state (the IO path must not change semantics).
#[test]
fn aurora_and_baseline_agree_on_final_state() {
    let history: Vec<(u64, TxnSpec)> = (0..60u64)
        .map(|i| {
            let op = match i % 4 {
                0 => Op::Upsert(i % 20, vec![i as u8; 8]),
                1 => Op::Upsert((i * 7) % 20, vec![(i + 1) as u8; 8]),
                2 => Op::Delete((i + 3) % 20),
                _ => Op::Upsert(i % 20, vec![(i * 3) as u8; 8]),
            };
            // deletes can fail if absent: make them upsert-then-delete pairs
            let spec = match op {
                Op::Delete(k) => TxnSpec {
                    ops: vec![Op::Upsert(k, vec![0u8; 8]), Op::Delete(k)],
                },
                other => TxnSpec::single(other),
            };
            (i, spec)
        })
        .collect();

    // run on Aurora
    let mut a = Cluster::build(ClusterConfig {
        seed: 3,
        bootstrap_rows: 20,
        pgs: 2,
        pages_per_pg: 4_000,
        ..Default::default()
    });
    a.sim.run_for(SimDuration::from_millis(300));
    for (conn, spec) in &history {
        a.submit(*conn, spec.clone());
        a.sim.run_for(SimDuration::from_millis(10));
    }
    a.sim.run_for(SimDuration::from_millis(300));

    // run on the baseline
    let mut m = MysqlCluster::build(MysqlClusterConfig {
        seed: 3,
        bootstrap_rows: 20,
        ..Default::default()
    });
    m.sim.run_for(SimDuration::from_millis(300));
    for (conn, spec) in &history {
        m.submit(*conn, spec.clone());
        m.sim.run_for(SimDuration::from_millis(10));
    }
    m.sim.run_for(SimDuration::from_millis(300));

    // read the full keyspace back from both
    for k in 0..20u64 {
        a.submit(10_000 + k, TxnSpec::single(Op::Get(k)));
        m.submit(10_000 + k, TxnSpec::single(Op::Get(k)));
    }
    a.sim.run_for(SimDuration::from_millis(500));
    m.sim.run_for(SimDuration::from_millis(500));

    let ra = a.responses();
    let rm = m.responses();
    for k in 0..20u64 {
        let va = row_of(ra.iter().find(|r| r.conn == 10_000 + k).unwrap());
        let vm = row_of(rm.iter().find(|r| r.conn == 10_000 + k).unwrap());
        assert_eq!(va, vm, "state diverged at key {k}");
    }
}

/// Crash the writer repeatedly under load; every acknowledged commit must
/// survive all of them (§2: "data, once written, can be read").
#[test]
fn acked_commits_survive_repeated_crashes() {
    let mut c = Cluster::build(ClusterConfig {
        seed: 5,
        bootstrap_rows: 100,
        pgs: 2,
        pages_per_pg: 4_000,
        ..Default::default()
    });
    c.sim.run_for(SimDuration::from_millis(300));

    let mut acked: Vec<u64> = Vec::new();
    let mut conn = 0u64;
    for round in 0..3 {
        for i in 0..15u64 {
            let key = 50_000 + round * 100 + i;
            c.submit(
                conn,
                TxnSpec::single(Op::Insert(key, vec![round as u8 + 1; 4])),
            );
            conn += 1;
        }
        c.sim.run_for(SimDuration::from_millis(200));
        // record which commits were acknowledged before the crash
        for resp in c.responses() {
            if let TxnResult::Committed(_) = resp.result {
                let key = 50_000 + (resp.conn / 15) * 100 + resp.conn % 15;
                if !acked.contains(&key) {
                    acked.push(key);
                }
            }
        }
        c.sim.crash(c.engine);
        c.sim.run_for(SimDuration::from_millis(30));
        c.sim.restart(c.engine);
        let mut guard = 0;
        while c.sim.actor::<EngineActor>(c.engine).status() != EngineStatus::Ready {
            c.sim.run_for(SimDuration::from_millis(10));
            guard += 1;
            assert!(guard < 10_000, "recovery stuck in round {round}");
        }
    }

    // every acknowledged key is readable
    assert!(
        acked.len() >= 30,
        "expected most commits acked, got {}",
        acked.len()
    );
    for (i, key) in acked.iter().enumerate() {
        c.submit(900_000 + i as u64, TxnSpec::single(Op::Get(*key)));
    }
    c.sim.run_for(SimDuration::from_secs(2));
    let rs = c.responses();
    for (i, key) in acked.iter().enumerate() {
        let resp = rs.iter().find(|r| r.conn == 900_000 + i as u64).unwrap();
        assert!(
            row_of(resp).is_some(),
            "acked key {key} lost after repeated crashes"
        );
    }
}

/// Kill the writer *and* an AZ at once, heal, and verify consistency.
#[test]
fn combined_writer_and_az_failure() {
    let mut c = Cluster::build(ClusterConfig {
        seed: 8,
        bootstrap_rows: 100,
        pgs: 2,
        pages_per_pg: 4_000,
        ..Default::default()
    });
    c.sim.run_for(SimDuration::from_millis(300));
    for i in 0..20u64 {
        c.submit(i, TxnSpec::single(Op::Insert(70_000 + i, vec![9; 4])));
    }
    c.sim.run_for(SimDuration::from_millis(300));
    let committed = c.responses().len();
    assert_eq!(committed, 20);

    // simultaneous writer crash + AZ outage: recovery still possible (read
    // quorum of 3 survives with 4 nodes up)
    c.sim.zone_down(Zone(2));
    c.sim.crash(c.engine);
    c.sim.run_for(SimDuration::from_millis(50));
    c.sim.restart(c.engine);
    let mut guard = 0;
    while c.sim.actor::<EngineActor>(c.engine).status() != EngineStatus::Ready {
        c.sim.run_for(SimDuration::from_millis(10));
        guard += 1;
        assert!(guard < 10_000, "recovery must proceed with an AZ down");
    }
    // reads and writes work with the AZ still down
    c.submit(100, TxnSpec::single(Op::Get(70_005)));
    c.submit(101, TxnSpec::single(Op::Upsert(70_050, vec![1; 4])));
    c.sim.run_for(SimDuration::from_secs(1));
    let rs = c.responses();
    assert!(row_of(rs.iter().find(|r| r.conn == 100).unwrap()).is_some());
    assert!(rs.iter().any(|r| r.conn == 101));

    // heal; the fleet reconverges
    c.sim.zone_up(Zone(2));
    c.sim.run_for(SimDuration::from_secs(2));
    assert!(c.sim.metrics.counter_total("storage.gossip_filled") > 0);
}

/// Backups run concurrently with load and PITR reconstructs a mid-run
/// state exactly.
#[test]
fn pitr_under_concurrent_load() {
    let store = ObjectStore::new();
    // bootstrap_rows = 0: bootstrap row hashes contain arbitrary bytes that
    // would false-positive the 0x22 scan below
    let mut c = Cluster::build(ClusterConfig {
        seed: 13,
        bootstrap_rows: 0,
        pgs: 1,
        pages_per_pg: 4_000,
        store: Some(store.clone()),
        ..Default::default()
    });
    c.sim.run_for(SimDuration::from_millis(300));
    for i in 0..50u64 {
        c.submit(i, TxnSpec::single(Op::Upsert(i % 50, vec![0x11; 4])));
    }
    c.sim.run_for(SimDuration::from_secs(1));
    let boundary = c.engine_actor().vdl();
    for i in 0..30u64 {
        c.submit(100 + i, TxnSpec::single(Op::Upsert(i % 50, vec![0x22; 4])));
    }
    c.sim.run_for(SimDuration::from_secs(4)); // backups drain

    let seg = aurora::log::SegmentId::new(aurora::log::PgId(0), 0);
    let (pages, records) = store.restore(seg, boundary).expect("restorable");
    // replay onto the snapshot and confirm nothing of phase 2 leaked in
    let mut by_id: std::collections::HashMap<_, _> = pages.into_iter().collect();
    for rec in &records {
        assert!(rec.lsn <= boundary, "restore returned post-boundary record");
        if let Some(pid) = rec.page() {
            let page = by_id.entry(pid).or_default();
            let _ = aurora::log::apply_record(page, rec);
        }
    }
    // scan for 4-byte runs of 0x22 (whole phase-2 row payloads); single
    // 0x22 bytes occur innocently in entry counts etc.
    let phase2 = by_id
        .values()
        .flat_map(|p| p.bytes().windows(4))
        .filter(|w| w == &[0x22; 4])
        .count();
    assert_eq!(phase2, 0, "PITR image contains post-boundary rows");
    // and phase-1 rows are present
    let phase1 = by_id
        .values()
        .flat_map(|p| p.bytes().windows(4))
        .filter(|w| w == &[0x11; 4])
        .count();
    assert!(phase1 >= 50, "phase-1 rows missing: {phase1}");
}

/// The baseline's recovery replays its checkpoint tail; Aurora's does not.
/// Both end consistent, but Aurora reopens faster under identical load.
#[test]
fn recovery_speed_aurora_vs_baseline() {
    // aurora
    let mut a = Cluster::build(ClusterConfig {
        seed: 17,
        bootstrap_rows: 2_000,
        pgs: 2,
        pages_per_pg: 4_000,
        ..Default::default()
    });
    a.sim.run_for(SimDuration::from_millis(500));
    for i in 0..500u64 {
        a.submit(i, TxnSpec::single(Op::Upsert(i % 2_000, vec![1; 4])));
    }
    a.sim.run_for(SimDuration::from_millis(500));
    a.sim.crash(a.engine);
    a.sim.run_for(SimDuration::from_millis(20));
    a.sim.restart(a.engine);
    let t0 = a.sim.now();
    let mut guard = 0;
    while a.sim.actor::<EngineActor>(a.engine).status() != EngineStatus::Ready {
        a.sim.run_for(SimDuration::from_millis(5));
        guard += 1;
        assert!(guard < 100_000);
    }
    let aurora_recovery = a.sim.now().since(t0);

    // baseline with an old checkpoint (big replay tail) and a realistic
    // single-threaded replay rate
    let mut m = MysqlCluster::build_with(
        MysqlClusterConfig {
            seed: 17,
            bootstrap_rows: 2_000,
            checkpoint_every_records: Some(u64::MAX), // never re-checkpoint
            ..Default::default()
        },
        |e| {
            e.replay_rate = 100_000;
        },
    );
    m.sim.run_for(SimDuration::from_millis(500));
    for i in 0..500u64 {
        m.submit(i, TxnSpec::single(Op::Upsert(i % 2_000, vec![1; 4])));
    }
    m.sim.run_for(SimDuration::from_millis(500));
    m.sim.crash(m.engine);
    m.sim.run_for(SimDuration::from_millis(20));
    m.sim.restart(m.engine);
    let t0 = m.sim.now();
    let mut guard = 0;
    while !m
        .sim
        .actor::<aurora::baseline::MysqlEngine>(m.engine)
        .is_ready()
    {
        m.sim.run_for(SimDuration::from_millis(5));
        guard += 1;
        assert!(guard < 1_000_000);
    }
    let mysql_recovery = m.sim.now().since(t0);

    assert!(
        aurora_recovery < mysql_recovery,
        "aurora {aurora_recovery:?} vs mysql {mysql_recovery:?}"
    );
}

/// The bench harness accepts a declarative [`FaultPlan`] and installs it
/// at the warmup boundary: a mid-window storage-node crash plus a packet
/// chaos overlay must not stop commits (4/6 quorum), and the measured run
/// must be reproducible from (params, plan) alone.
#[test]
fn bench_harness_drives_a_fault_plan() {
    use aurora::bench::harness::{run_aurora, AuroraParams};
    use aurora::bench::Mix;
    use aurora::sim::{FaultPlan, PacketChaos};

    let ms = SimDuration::from_millis;
    let mut p = AuroraParams::new(Mix::Web {
        reads: 2,
        writes: 1,
    });
    p.seed = 909;
    p.connections = 16;
    p.rows = 2_000;
    p.warmup = ms(200);
    p.window = ms(600);
    // storage nodes are ids 1..=6 in the harness cluster (engine is 0)
    p.fault_plan = Some(
        FaultPlan::new()
            .crash_for(ms(100), ms(200), 5)
            .packet_chaos_for(
                ms(50),
                ms(400),
                PacketChaos {
                    drop: 0.01,
                    duplicate: 0.02,
                    delay: 0.05,
                    delay_by: ms(1),
                },
            ),
    );

    let a = run_aurora(&p);
    let b = run_aurora(&p);
    assert!(a.commits > 0, "faulted run must still commit: {a:?}");
    assert_eq!(
        (a.commits, a.aborts, a.tps.to_bits()),
        (b.commits, b.aborts, b.tps.to_bits()),
        "same params + plan must reproduce the same run"
    );
}
